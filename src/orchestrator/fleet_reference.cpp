#include "orchestrator/fleet_reference.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "nfvsim/chain.hpp"
#include "orchestrator/fault.hpp"
#include "orchestrator/fleet_series.hpp"
#include "topology/path_table.hpp"
#include "traffic/generator.hpp"

// This file intentionally mirrors the pre-refactor build_timeline line
// for line (same RNG draw order, same floating-point accumulation order,
// same tie-breaks). Do not "clean it up" — its value is being the frozen
// reference the event engine is proven bit-identical against.

namespace greennfv::orchestrator {

namespace {

// Keep in sync with fleet.cpp (the constants define the RNG streams both
// engines must share).
constexpr std::uint64_t kTimelineSeedSalt = 0xF1EE7C0FFEEull;

}  // namespace

FleetTimeline build_reference_timeline(const scenario::ScenarioSpec& spec,
                                       const FleetPolicy* policy_override) {
  if (!spec.fleet.enabled) {
    throw std::invalid_argument(
        "orchestrator: reference timeline needs fleet.enabled");
  }
  const int horizon = spec.fleet.horizon_windows > 0
                          ? spec.fleet.horizon_windows
                          : spec.eval_windows;
  const bool static_fleet = spec.fleet.arrival_rate == 0.0;
  const double capacity_cores =
      static_cast<double>(spec.node.total_cores) - spec.node.controller_cores;

  FleetTimeline timeline;
  timeline.num_nodes = spec.num_nodes;

  const int num_nodes = spec.num_nodes;
  const double window_s = spec.window_s;
  Rng rng(spec.seed ^ kTimelineSeedSalt);
  const std::unique_ptr<FleetPolicy> owned_policy =
      policy_override == nullptr ? make_fleet_policy(spec.fleet.policy)
                                 : nullptr;
  const FleetPolicy* policy =
      policy_override != nullptr ? policy_override : owned_policy.get();
  const PowerStateConfig ps_config{
      spec.node.p_idle_w, spec.node.p_sleep_w, spec.node.wake_latency_s,
      spec.fleet.sleep_after_windows, spec.fleet.power_gating};
  std::vector<NodePowerStateMachine> power(
      static_cast<std::size_t>(num_nodes), NodePowerStateMachine(ps_config));
  std::vector<std::vector<int>> hosted(static_cast<std::size_t>(num_nodes));
  std::vector<double> committed(static_cast<std::size_t>(num_nodes), 0.0);

  // PR 10 addition, read-only: the per-window health sampler. Inert
  // unless telemetry::series::enabled(); samples after step 4 closes the
  // window, so it cannot perturb the frozen accounting above/below.
  FleetSeriesSampler sampler(horizon, window_s);

  // The network fabric (topology runs only). PathTable's integer kbps/ns
  // accounting makes its state a pure function of the active chain set,
  // so this engine's node-order departure releases and the event engine's
  // id-order releases land on the identical fabric state.
  std::unique_ptr<topology::Topology> topo;
  std::unique_ptr<topology::PathTable> net_owned;
  if (spec.topology.enabled) {
    topo = std::make_unique<topology::Topology>(
        topology::Topology::build(spec.topology, num_nodes));
    net_owned = std::make_unique<topology::PathTable>(
        *topo, topology::routing_from_name(spec.topology.routing),
        topology::ns_from_us(spec.latency_sla_us));
    timeline.topology_enabled = true;
    timeline.topology_switches = topo->num_switches();
    timeline.topology_links = topo->num_links();
  }
  topology::PathTable* const net = net_owned.get();

  // The fault schedule: the identical pure function of (spec, horizon,
  // fleet shape) the event engine expands — both engines consume the same
  // events in the same order.
  const FaultSchedule faults = build_fault_schedule(
      spec, horizon, num_nodes, net != nullptr ? topo->num_links() : 0);
  if (spec.fault.enabled) {
    timeline.fault_enabled = true;
    timeline.node_crashes = faults.node_crashes;
    timeline.node_repairs = faults.node_repairs;
    timeline.link_fails = faults.link_fails;
    timeline.link_repairs = faults.link_repairs;
    timeline.rack_outages = faults.rack_outages;
    timeline.storm_windows = faults.storm_windows;
  }
  const auto storm_scale = [&](int w) {
    return faults.storm_active(w) ? spec.fault.wake_storm_factor : 1.0;
  };
  std::vector<char> down(static_cast<std::size_t>(num_nodes), 0);

  // --- the initial chain set (the scenario's static topology) -------------
  const auto comps = scenario::resolved_chain_nfs(spec);
  timeline.flows = scenario::resolved_flows(spec);
  for (int c = 0; c < spec.num_chains; ++c) {
    ChainInstance chain;
    chain.id = c;
    chain.nfs = comps[static_cast<std::size_t>(c)];
    // Algorithm 1 line 1 allocates one core per NF.
    chain.cores = static_cast<double>(chain.nfs.size());
    for (const auto& flow : timeline.flows) {
      if (flow.chain_index != c) continue;
      chain.flows.push_back(flow);
      chain.offered_gbps += flow.mean_rate_gbps();
      chain.offered_pps += flow.mean_rate_pps;
    }
    if (chain.flows.empty()) {
      throw std::invalid_argument(format(
          "orchestrator: initial chain %d receives no flows (fleet runs"
          " need traffic on every initial chain)",
          c));
    }
    timeline.chains.push_back(std::move(chain));
  }

  const auto fleet_view = [&]() {
    FleetView view;
    for (int n = 0; n < num_nodes; ++n) {
      NodeView node;
      // Down nodes present at capacity 0 and never asleep — exactly what
      // FleetIndex::materialize_view reports — so every fits() gate masks
      // them and both engines' policies see the same candidate set.
      node.down = down[static_cast<std::size_t>(n)] != 0;
      node.capacity_cores = node.down ? 0.0 : capacity_cores;
      node.committed_cores = committed[static_cast<std::size_t>(n)];
      node.asleep =
          !node.down && power[static_cast<std::size_t>(n)].asleep();
      for (const int id : hosted[static_cast<std::size_t>(n)]) {
        const ChainInstance& chain =
            timeline.chains[static_cast<std::size_t>(id)];
        node.chains.push_back({id, chain.cores, chain.offered_gbps});
      }
      view.nodes.push_back(std::move(node));
    }
    return view;
  };

  // Minimum one window of residency; exponential holding beyond that.
  const auto draw_holding = [&]() {
    return 1 + static_cast<int>(
                   rng.exponential(1.0 / spec.fleet.mean_holding_windows));
  };

  const auto place = [&](int id, int w, FleetTimeline::Window& win) {
    ChainInstance& chain = timeline.chains[static_cast<std::size_t>(id)];
    const ArrivalRequest request{chain.cores, chain.offered_gbps};
    const int node = policy->choose_arrival(fleet_view(), request, net);
    if (node < 0) {
      ++win.rejected;
      ++timeline.rejected;
      chain.first_node = -1;
      return;
    }
    // Network admission before anything commits: a placement whose path
    // would oversubscribe a link is rejected here, and the node is never
    // spuriously woken for it.
    if (net != nullptr && !net->commit_chain(id, node, chain.offered_gbps)) {
      ++win.rejected;
      ++timeline.rejected;
      ++win.net_rejected;
      ++timeline.net_rejected;
      chain.first_node = -1;
      return;
    }
    if (net != nullptr) {
      chain.path_hops = net->chain_hops(id);
      chain.path_latency_ns = net->chain_latency_ns(id);
    }
    const auto charge = power[static_cast<std::size_t>(node)].activate();
    if (charge.woke) {
      const double scale = storm_scale(w);
      ++timeline.wakeups;
      win.charges.push_back({id, charge.downtime_s * scale,
                             charge.energy_j * scale, ChargeKind::kWake});
      timeline.wake_energy_j += charge.energy_j * scale;
      timeline.downtime_s += charge.downtime_s * scale;
    }
    hosted[static_cast<std::size_t>(node)].push_back(id);
    committed[static_cast<std::size_t>(node)] += chain.cores;
    win.arrivals.push_back(id);
    ++timeline.arrivals;
    chain.first_node = node;
  };

  // Recovery re-placement for fault-evicted chains — mirrors the event
  // engine's replace_chain exactly (same policy seam, same charges, same
  // order of record pushes).
  const auto replace_chain = [&](int id, int from, int w,
                                 FleetTimeline::Window& win) {
    const ChainInstance& chain =
        timeline.chains[static_cast<std::size_t>(id)];
    const ArrivalRequest request{chain.cores, chain.offered_gbps};
    const int node = policy->choose_arrival(fleet_view(), request, net);
    bool placed = node >= 0;
    if (placed && net != nullptr &&
        !net->commit_chain(id, node, chain.offered_gbps)) {
      placed = false;
    }
    if (!placed) {
      win.fault_dropped.push_back(id);
      ++timeline.fault_dropped;
      win.charges.push_back({id, window_s, 0.0, ChargeKind::kDrop});
      timeline.downtime_s += window_s;
      return;
    }
    const auto charge = power[static_cast<std::size_t>(node)].activate();
    if (charge.woke) {
      const double scale = storm_scale(w);
      ++timeline.wakeups;
      win.charges.push_back({id, charge.downtime_s * scale,
                             charge.energy_j * scale, ChargeKind::kWake});
      timeline.wake_energy_j += charge.energy_j * scale;
      timeline.downtime_s += charge.downtime_s * scale;
    }
    hosted[static_cast<std::size_t>(node)].push_back(id);
    committed[static_cast<std::size_t>(node)] += chain.cores;
    win.replacements.push_back({id, from, node});
    ++timeline.replaced;
    win.charges.push_back({id, spec.fault.replace_downtime_s,
                           spec.fault.replace_energy_j,
                           ChargeKind::kReplace});
    timeline.replace_energy_j += spec.fault.replace_energy_j;
    timeline.downtime_s += spec.fault.replace_downtime_s;
  };

  // Host lookup by scan — this engine keeps no chain->node map; the scan
  // is deterministic and only the fault step needs it.
  const auto find_host = [&](int id) {
    for (int n = 0; n < num_nodes; ++n) {
      const auto& chains_here = hosted[static_cast<std::size_t>(n)];
      if (std::find(chains_here.begin(), chains_here.end(), id) !=
          chains_here.end()) {
        return n;
      }
    }
    return -1;
  };
  const auto evict = [&](int id, int node) {
    auto& chains_here = hosted[static_cast<std::size_t>(node)];
    chains_here.erase(std::find(chains_here.begin(), chains_here.end(), id));
    committed[static_cast<std::size_t>(node)] -=
        timeline.chains[static_cast<std::size_t>(id)].cores;
  };

  timeline.windows.resize(static_cast<std::size_t>(horizon));
  int next_id = spec.num_chains;

  for (int w = 0; w < horizon; ++w) {
    FleetTimeline::Window& win =
        timeline.windows[static_cast<std::size_t>(w)];

    // 1. Departures: chains whose holding time expired leave at the
    //    window edge (static fleets never depart).
    if (!static_fleet) {
      for (int n = 0; n < num_nodes; ++n) {
        auto& chains_here = hosted[static_cast<std::size_t>(n)];
        for (std::size_t i = 0; i < chains_here.size();) {
          const int id = chains_here[i];
          const ChainInstance& chain =
              timeline.chains[static_cast<std::size_t>(id)];
          if (chain.departure_window == w) {
            win.departures.push_back(id);
            committed[static_cast<std::size_t>(n)] -= chain.cores;
            if (net != nullptr) net->release_chain(id);
            chains_here.erase(chains_here.begin() +
                              static_cast<std::ptrdiff_t>(i));
          } else {
            ++i;
          }
        }
      }
      std::sort(win.departures.begin(), win.departures.end());
      timeline.departures += static_cast<int>(win.departures.size());
    }

    // 1.5. Faults: inject this window's scheduled events and recover —
    //      the same order the event engine's kFaultPhase applies them.
    for (const FaultEvent& ev :
         faults.windows[static_cast<std::size_t>(w)]) {
      switch (ev.kind) {
        case FaultEvent::Kind::kNodeCrash: {
          const int node = ev.target;
          ++win.node_crashes;
          std::vector<int> victims = hosted[static_cast<std::size_t>(node)];
          std::sort(victims.begin(), victims.end());
          for (const int id : victims) {
            evict(id, node);
            if (net != nullptr) net->release_chain(id);
          }
          down[static_cast<std::size_t>(node)] = 1;
          power[static_cast<std::size_t>(node)] =
              NodePowerStateMachine(ps_config);
          for (const int id : victims) replace_chain(id, node, w, win);
          break;
        }
        case FaultEvent::Kind::kNodeRepair: {
          ++win.node_repairs;
          down[static_cast<std::size_t>(ev.target)] = 0;
          break;
        }
        case FaultEvent::Kind::kLinkFail: {
          ++win.link_fails;
          const std::vector<int> riders = net->fail_link(ev.target);
          for (const int id : riders) {
            const int host = find_host(id);
            if (host < 0) continue;
            if (net->try_move(id, host)) {
              ++win.rerouted;
              ++timeline.rerouted;
              continue;
            }
            evict(id, host);
            net->release_chain(id);
            replace_chain(id, host, w, win);
          }
          break;
        }
        case FaultEvent::Kind::kLinkRepair: {
          ++win.link_repairs;
          net->repair_link(ev.target);
          break;
        }
      }
    }

    // 2. Arrivals. The initial chain set lands at w=0 through the same
    //    policy; dynamic arrivals are Poisson with the scenario's
    //    RateProfile as the fleet-level load envelope.
    if (w == 0) {
      for (int c = 0; c < spec.num_chains; ++c) {
        if (!static_fleet) {
          timeline.chains[static_cast<std::size_t>(c)].departure_window =
              draw_holding();
        }
        place(c, w, win);
      }
    }
    if (!static_fleet) {
      const double mean =
          spec.fleet.arrival_rate * spec.profile.multiplier(w * window_s);
      const std::uint64_t count = mean > 0.0 ? rng.poisson(mean) : 0;
      for (std::uint64_t a = 0; a < count; ++a) {
        ChainInstance chain;
        chain.id = next_id++;
        chain.nfs = nfvsim::standard_chain_nfs(chain.id);
        chain.cores = static_cast<double>(chain.nfs.size());
        chain.flows = traffic::make_eval_flows(
            spec.fleet.flows_per_chain, /*num_chains=*/1,
            spec.fleet.chain_offered_gbps, rng.next_u64());
        for (auto& flow : chain.flows) {
          flow.chain_index = chain.id;
          chain.offered_gbps += flow.mean_rate_gbps();
          chain.offered_pps += flow.mean_rate_pps;
        }
        chain.arrival_window = w;
        chain.departure_window = w + draw_holding();
        timeline.chains.push_back(std::move(chain));
        ChainInstance& arrived = timeline.chains.back();
        place(arrived.id, w, win);
        // A rejected chain never joins the flow pool — its flows would
        // otherwise be dead weight re-scanned on every node-env rebuild.
        if (arrived.first_node >= 0) {
          timeline.flows.insert(timeline.flows.end(), arrived.flows.begin(),
                                arrived.flows.end());
        }
      }
    }

    // 3. Consolidation: the policy may drain underutilized nodes so power
    //    gating can put them to sleep. Each move costs downtime + energy.
    if (!static_fleet && spec.fleet.migration) {
      const std::vector<Migration> plan =
          policy->consolidate(fleet_view(), spec.fleet.consolidate_below);
      for (const Migration& move : plan) {
        // Network veto: a consolidation move whose re-routed path has no
        // feasible capacity is skipped (try_move leaves the fabric
        // untouched on failure), not applied half-way.
        if (net != nullptr && !net->try_move(move.chain, move.to)) {
          ++win.net_blocked;
          ++timeline.net_blocked;
          continue;
        }
        const ChainInstance& chain =
            timeline.chains[static_cast<std::size_t>(move.chain)];
        auto& from = hosted[static_cast<std::size_t>(move.from)];
        from.erase(std::find(from.begin(), from.end(), move.chain));
        committed[static_cast<std::size_t>(move.from)] -= chain.cores;
        const auto charge =
            power[static_cast<std::size_t>(move.to)].activate();
        if (charge.woke) {
          // The policies never wake a node to consolidate into, but a
          // custom policy could — account for it either way.
          const double scale = storm_scale(w);
          ++timeline.wakeups;
          win.charges.push_back({move.chain, charge.downtime_s * scale,
                                 charge.energy_j * scale,
                                 ChargeKind::kWake});
          timeline.wake_energy_j += charge.energy_j * scale;
          timeline.downtime_s += charge.downtime_s * scale;
        }
        hosted[static_cast<std::size_t>(move.to)].push_back(move.chain);
        committed[static_cast<std::size_t>(move.to)] += chain.cores;
        win.migrations.push_back(move);
        ++timeline.migrations;
        win.charges.push_back({move.chain, spec.fleet.migration_downtime_s,
                               spec.fleet.migration_energy_j,
                               ChargeKind::kMigration});
        timeline.migration_energy_j += spec.fleet.migration_energy_j;
        timeline.downtime_s += spec.fleet.migration_downtime_s;
      }
    }

    // 4. Occupancy and power-state accounting, in node order (the
    //    floating-point standby accumulation order is part of the
    //    contract the event engine reproduces).
    for (int n = 0; n < num_nodes; ++n) {
      // A crashed node is out of the fleet until repair: no standby draw,
      // no occupancy sample — only the down-node tally.
      if (down[static_cast<std::size_t>(n)] != 0) {
        ++win.down_nodes;
        continue;
      }
      auto& chains_here = hosted[static_cast<std::size_t>(n)];
      std::sort(chains_here.begin(), chains_here.end());
      timeline.occupancy.add(chains_here.size());
      win.live_chains += static_cast<int>(chains_here.size());

      const bool occupied = !chains_here.empty();
      if (occupied) {
        ++win.active_nodes;
      } else if (power[static_cast<std::size_t>(n)].asleep()) {
        ++win.asleep_nodes;
      } else {
        ++win.idle_nodes;
      }
      win.standby_energy_j +=
          power[static_cast<std::size_t>(n)].advance(occupied, window_s);
    }
    if (net != nullptr) {
      win.link_energy_j = net->window_link_energy_j(window_s);
      win.routed_chains = static_cast<int>(net->active_chains());
      win.latency_violations =
          static_cast<int>(net->active_latency_violations());
      win.path_latency_sum_ns = net->active_path_latency_ns();
      timeline.link_energy_j += win.link_energy_j;
      timeline.routed_chain_windows += win.routed_chains;
      timeline.latency_violation_chain_windows += win.latency_violations;
      timeline.path_latency_sum_ns += win.path_latency_sum_ns;
    }
    timeline.standby_energy_j += win.standby_energy_j;
    if (sampler.active()) {
      double committed_total = 0.0;
      for (int n = 0; n < num_nodes; ++n) {
        if (down[static_cast<std::size_t>(n)] == 0) {
          committed_total += committed[static_cast<std::size_t>(n)];
        }
      }
      const double capacity =
          static_cast<double>(num_nodes - win.down_nodes) * capacity_cores;
      sampler.sample(w, win, committed_total, capacity, net);
    }
  }
  if (sampler.active()) timeline.series = sampler.table();
  return timeline;
}

}  // namespace greennfv::orchestrator
