#include "orchestrator/fault.hpp"

#include <algorithm>
#include <map>

#include "common/rng.hpp"

namespace greennfv::orchestrator {

namespace {

/// Salt for the fault stream. Distinct from the timeline salt in
/// fleet.cpp so the arrival/holding/flow draws are untouched by
/// fault.enabled — that independence is what keeps fault-free histories
/// byte-identical to the pre-fault goldens.
constexpr std::uint64_t kFaultSeedSalt = 0xFA177AB1E5EEDull;

/// Build-time bookkeeping: which nodes/links are currently up, plus the
/// repairs already scheduled. Victims are always drawn uniformly over
/// the *up* population, so an emitted crash/fail is applicable by
/// construction and engines never have to re-check.
struct Builder {
  const scenario::FaultSpec& fault;
  int horizon;
  Rng rng;
  std::vector<char> node_up;
  std::vector<char> link_up;
  /// Repairs land at the start of their window, before that window's new
  /// faults, in the order they were scheduled (deterministic: schedule
  /// order is draw order).
  std::map<int, std::vector<FaultEvent>> due;
  FaultSchedule out;

  Builder(const scenario::ScenarioSpec& spec, int horizon_windows,
          int num_nodes, int num_links)
      : fault(spec.fault),
        horizon(horizon_windows),
        rng(spec.seed ^ kFaultSeedSalt),
        node_up(static_cast<std::size_t>(num_nodes), 1),
        link_up(static_cast<std::size_t>(num_links), 1) {
    out.windows.resize(static_cast<std::size_t>(horizon_windows));
    out.wake_storm.assign(static_cast<std::size_t>(horizon_windows), 0);
  }

  /// Repair delay in windows: exponential with the configured mean,
  /// floored at one window (a fault is never repaired within its own
  /// window — the fleet must actually live with it).
  [[nodiscard]] int draw_repair_delay() {
    return 1 + static_cast<int>(
                   rng.exponential(1.0 / fault.mean_repair_windows));
  }

  /// Draws the k-th up entry (uniform over the up population). Returns
  /// -1 when everything is already down.
  [[nodiscard]] int draw_up(const std::vector<char>& up) {
    std::vector<int> candidates;
    candidates.reserve(up.size());
    for (std::size_t i = 0; i < up.size(); ++i)
      if (up[i]) candidates.push_back(static_cast<int>(i));
    if (candidates.empty()) return -1;
    return candidates[rng.uniform_u64(candidates.size())];
  }

  void crash_node(int node, int window, int repair_window) {
    node_up[static_cast<std::size_t>(node)] = 0;
    out.windows[static_cast<std::size_t>(window)].push_back(
        {FaultEvent::Kind::kNodeCrash, node});
    ++out.node_crashes;
    if (repair_window < horizon) {
      due[repair_window].push_back({FaultEvent::Kind::kNodeRepair, node});
    }
  }

  void build() {
    for (int w = 0; w < horizon; ++w) {
      auto& events = out.windows[static_cast<std::size_t>(w)];
      // 1. Repairs due this window (scheduled order).
      if (const auto it = due.find(w); it != due.end()) {
        for (const FaultEvent& repair : it->second) {
          events.push_back(repair);
          if (repair.kind == FaultEvent::Kind::kNodeRepair) {
            node_up[static_cast<std::size_t>(repair.target)] = 1;
            ++out.node_repairs;
          } else {
            link_up[static_cast<std::size_t>(repair.target)] = 1;
            ++out.link_repairs;
          }
        }
        due.erase(it);
      }
      // 2. Independent node crashes.
      const std::uint64_t crashes =
          fault.node_crash_rate > 0.0 ? rng.poisson(fault.node_crash_rate)
                                      : 0;
      for (std::uint64_t i = 0; i < crashes; ++i) {
        const int victim = draw_up(node_up);
        if (victim < 0) break;
        crash_node(victim, w, w + draw_repair_delay());
      }
      // 3. Correlated rack outages: every up node in the victim rack
      // crashes now and the whole rack repairs together.
      const std::uint64_t outages =
          fault.rack_outage_rate > 0.0
              ? rng.poisson(fault.rack_outage_rate)
              : 0;
      const int num_racks =
          (static_cast<int>(node_up.size()) + fault.rack_size - 1) /
          fault.rack_size;
      for (std::uint64_t i = 0; i < outages && num_racks > 0; ++i) {
        const int rack =
            static_cast<int>(rng.uniform_u64(
                static_cast<std::uint64_t>(num_racks)));
        const int repair_window = w + draw_repair_delay();
        const int lo = rack * fault.rack_size;
        const int hi = std::min(lo + fault.rack_size,
                                static_cast<int>(node_up.size()));
        bool hit = false;
        for (int node = lo; node < hi; ++node) {
          if (!node_up[static_cast<std::size_t>(node)]) continue;
          crash_node(node, w, repair_window);
          hit = true;
        }
        if (hit) ++out.rack_outages;
      }
      // 4. Link failures (only with a fabric to fail).
      const std::uint64_t fails =
          fault.link_fail_rate > 0.0 && !link_up.empty()
              ? rng.poisson(fault.link_fail_rate)
              : 0;
      for (std::uint64_t i = 0; i < fails; ++i) {
        const int victim = draw_up(link_up);
        if (victim < 0) break;
        link_up[static_cast<std::size_t>(victim)] = 0;
        events.push_back({FaultEvent::Kind::kLinkFail, victim});
        ++out.link_fails;
        const int repair_window = w + draw_repair_delay();
        if (repair_window < horizon) {
          due[repair_window].push_back(
              {FaultEvent::Kind::kLinkRepair, victim});
        }
      }
      // 5. Wake-latency storm flag.
      if (fault.wake_storm_prob > 0.0 &&
          rng.bernoulli(fault.wake_storm_prob)) {
        out.wake_storm[static_cast<std::size_t>(w)] = 1;
        ++out.storm_windows;
      }
    }
  }
};

}  // namespace

FaultSchedule build_fault_schedule(const scenario::ScenarioSpec& spec,
                                   int horizon, int num_nodes,
                                   int num_links) {
  if (!spec.fault.enabled || horizon <= 0) {
    FaultSchedule empty;
    empty.windows.resize(
        static_cast<std::size_t>(horizon > 0 ? horizon : 0));
    empty.wake_storm.assign(
        static_cast<std::size_t>(horizon > 0 ? horizon : 0), 0);
    return empty;
  }
  Builder builder(spec, horizon, num_nodes, num_links);
  builder.build();
  return std::move(builder.out);
}

}  // namespace greennfv::orchestrator
