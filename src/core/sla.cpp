#include "core/sla.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace greennfv::core {

std::string to_string(SlaKind kind) {
  switch (kind) {
    case SlaKind::kMaxThroughput:    return "MaxThroughput";
    case SlaKind::kMinEnergy:        return "MinEnergy";
    case SlaKind::kEnergyEfficiency: return "EnergyEfficiency";
  }
  return "?";
}

Sla::Sla(SlaKind kind, double energy_budget_j, double throughput_floor_gbps,
         double energy_reference_j)
    : kind_(kind),
      energy_budget_j_(energy_budget_j),
      throughput_floor_gbps_(throughput_floor_gbps),
      energy_reference_j_(energy_reference_j) {}

Sla Sla::max_throughput(double energy_budget_j) {
  GNFV_REQUIRE(energy_budget_j > 0.0, "MaxThroughput SLA: bad budget");
  return Sla(SlaKind::kMaxThroughput, energy_budget_j, 0.0,
             energy_budget_j);
}

Sla Sla::min_energy(double throughput_floor_gbps,
                    double energy_reference_j) {
  GNFV_REQUIRE(throughput_floor_gbps > 0.0, "MinEnergy SLA: bad floor");
  GNFV_REQUIRE(energy_reference_j > 0.0, "MinEnergy SLA: bad reference");
  return Sla(SlaKind::kMinEnergy, 0.0, throughput_floor_gbps,
             energy_reference_j);
}

Sla Sla::energy_efficiency() {
  return Sla(SlaKind::kEnergyEfficiency, 0.0, 0.0, 1.0);
}

std::string Sla::name() const { return to_string(kind_); }

bool Sla::satisfied(double throughput_gbps, double energy_j) const {
  switch (kind_) {
    case SlaKind::kMaxThroughput:
      return energy_j <= energy_budget_j_;
    case SlaKind::kMinEnergy:
      return throughput_gbps >= throughput_floor_gbps_;
    case SlaKind::kEnergyEfficiency:
      return true;
  }
  return true;
}

double Sla::efficiency(double throughput_gbps, double energy_j) {
  // λ = T/E (Eq. 3). Reported as Gbps per KJ so typical values are O(1-5),
  // matching the paper's Fig. 8c axis.
  return energy_j > 1e-9 ? throughput_gbps / (energy_j / 1000.0) : 0.0;
}

double Sla::reward(double throughput_gbps, double energy_j) const {
  if (!satisfied(throughput_gbps, energy_j)) return 0.0;
  switch (kind_) {
    case SlaKind::kMaxThroughput:
      // Maximize ΣT under the budget (Eq. 1).
      return throughput_gbps / kThroughputScaleGbps;
    case SlaKind::kMinEnergy:
      // "The reward gets better when it reduces energy consumption."
      return std::max(0.0, 1.0 - energy_j / energy_reference_j_);
    case SlaKind::kEnergyEfficiency:
      return efficiency(throughput_gbps, energy_j);
  }
  return 0.0;
}

double Sla::shaped_reward(double throughput_gbps, double energy_j) const {
  if (satisfied(throughput_gbps, energy_j))
    return reward(throughput_gbps, energy_j);
  switch (kind_) {
    case SlaKind::kMaxThroughput:
      return -std::min(1.0, (energy_j - energy_budget_j_) /
                                energy_budget_j_);
    case SlaKind::kMinEnergy:
      return -std::min(1.0, (throughput_floor_gbps_ - throughput_gbps) /
                                throughput_floor_gbps_);
    case SlaKind::kEnergyEfficiency:
      return reward(throughput_gbps, energy_j);
  }
  return 0.0;
}

}  // namespace greennfv::core
