#include "core/greennfv.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "core/nf_controller.hpp"
#include "rl/noise.hpp"
#include "rl/replay.hpp"

namespace greennfv::core {

namespace {

/// Fills the DDPG dims from the environment geometry.
rl::DdpgConfig resolve_ddpg(const TrainerConfig& config) {
  rl::DdpgConfig ddpg = config.ddpg;
  const StateCodec sc(config.env.spec,
                      static_cast<std::size_t>(config.env.num_chains),
                      config.env.window_s);
  const ActionCodec ac(config.env.spec,
                       static_cast<std::size_t>(config.env.num_chains));
  ddpg.state_dim = sc.state_dim();
  ddpg.action_dim = ac.action_dim();
  return ddpg;
}

/// Records one episode's outcome + mean knob choices (Figs 6-8 panels).
void record_episode(telemetry::Recorder& rec, double episode,
                    const NfvEnvironment& env, double mean_reward) {
  const auto& outcome = env.last_outcome();
  const nfvsim::ChainKnobs knobs = env.mean_knobs();
  rec.record("throughput_gbps", episode, outcome.throughput_gbps);
  rec.record("energy_j", episode, outcome.energy_j);
  rec.record("efficiency", episode, outcome.efficiency);
  rec.record("reward", episode, mean_reward);
  rec.record("cpu_usage_pct", episode, knobs.cores * 100.0);
  rec.record("core_freq_ghz", episode, knobs.freq_ghz);
  rec.record("llc_alloc_pct", episode, knobs.llc_fraction * 100.0);
  rec.record("dma_mib", episode, units::bytes_to_mib(knobs.dma_bytes));
  rec.record("batch", episode, static_cast<double>(knobs.batch));
}

}  // namespace

GreenNfvTrainer::GreenNfvTrainer(TrainerConfig config)
    : config_(std::move(config)) {
  GNFV_REQUIRE(config_.episodes >= 1, "trainer: need >= 1 episode");
  rl::DdpgConfig ddpg = resolve_ddpg(config_);
  agent_ = std::make_shared<rl::DdpgAgent>(ddpg, config_.seed);
}

TrainResult GreenNfvTrainer::train(telemetry::Recorder* curves) {
  return config_.use_apex ? train_apex(curves) : train_sync(curves);
}

TrainResult GreenNfvTrainer::train_sync(telemetry::Recorder* curves) {
  NfvEnvironment env(config_.env, config_.seed);
  Rng rng(config_.seed ^ 0xD1CEF00Dull);

  std::unique_ptr<rl::ReplayInterface> replay;
  if (config_.prioritized_replay) {
    replay = std::make_unique<rl::PrioritizedReplay>(config_.per);
  } else {
    replay = std::make_unique<rl::UniformReplay>(config_.per.capacity);
  }
  rl::GaussianNoise noise(agent_->config().action_dim, config_.noise_sigma,
                          config_.noise_decay, config_.noise_sigma_min);
  // Rollout scratch: the per-env-step act path reuses these buffers.
  rl::DdpgAgent::ActScratch scratch;
  std::vector<double> action(agent_->config().action_dim);

  TrainResult result;
  result.episodes = config_.episodes;
  const int tail_start = config_.episodes - std::max(1, config_.episodes / 10);
  double tail_windows = 0.0;

  for (int episode = 0; episode < config_.episodes; ++episode) {
    std::vector<double> state = env.reset(config_.seed + 1000003ull *
                                          static_cast<std::uint64_t>(episode));
    double reward_sum = 0.0;
    bool done = false;
    int steps = 0;
    while (!done) {
      agent_->act_noisy_into(state, noise, rng, scratch, action);
      auto sr = env.step(action);
      rl::Transition t;
      t.state = std::move(state);
      t.action = action;
      t.reward = sr.reward;
      t.next_state = sr.next_state;
      t.done = sr.done;
      replay->add(std::move(t), 0.0);
      reward_sum += sr.reward;
      state = std::move(sr.next_state);
      done = sr.done;
      ++steps;

      if (replay->size() >= agent_->config().batch_size * 2) {
        const rl::TrainStats& stats = agent_->train_step(*replay, rng);
        replay->update_priorities(stats.indices, stats.td_errors);
        ++result.train_steps;
      }
    }

    const double mean_reward = reward_sum / std::max(1, steps);
    if (curves != nullptr) {
      record_episode(*curves, static_cast<double>(episode), env,
                     mean_reward);
    }
    if (episode >= tail_start) {
      result.tail_gbps += env.last_outcome().throughput_gbps;
      result.tail_energy_j += env.last_outcome().energy_j;
      result.tail_reward += mean_reward;
      result.tail_efficiency += env.last_outcome().efficiency;
      tail_windows += 1.0;
    }
  }
  if (tail_windows > 0.0) {
    result.tail_gbps /= tail_windows;
    result.tail_energy_j /= tail_windows;
    result.tail_reward /= tail_windows;
    result.tail_efficiency /= tail_windows;
  }
  return result;
}

TrainResult GreenNfvTrainer::train_apex(telemetry::Recorder* curves) {
  rl::ApexConfig apex = config_.apex;
  apex.per = config_.per;
  apex.steps_per_episode = config_.env.steps_per_episode;
  // Split the episode budget across actors.
  apex.episodes_per_actor =
      std::max(1, config_.episodes / std::max(1, apex.num_actors));

  const EnvConfig env_config = config_.env;
  rl::EnvFactory factory = [env_config](std::uint64_t seed) {
    return std::make_unique<NfvEnvironment>(env_config, seed);
  };

  rl::ApexRunner runner(resolve_ddpg(config_), apex, factory, config_.seed);
  // Share parameters: the runner owns its own agent; we adopt it afterward
  // by copying parameters into ours (the runner agent dies with the call).
  std::mutex curve_mutex;
  rl::EpisodeCallback callback = nullptr;
  if (curves != nullptr) {
    callback = [curves, &curve_mutex](const rl::EpisodeReport& report) {
      if (report.actor_id != 0) return;  // record one actor's view
      std::lock_guard<std::mutex> lock(curve_mutex);
      curves->record("reward", static_cast<double>(report.episode),
                     report.mean_reward);
    };
  }
  const rl::ApexResult apex_result = runner.train(callback);

  // Adopt the learner's policy.
  agent_ = std::make_shared<rl::DdpgAgent>(resolve_ddpg(config_),
                                           config_.seed);
  agent_->set_actor_parameters(runner.agent().actor_parameters());

  TrainResult result;
  result.episodes = apex.episodes_per_actor * apex.num_actors;
  result.train_steps = apex_result.learner_steps;
  result.tail_reward = apex_result.final_mean_reward;

  // Measure converged behaviour with a short greedy evaluation.
  NfvEnvironment env(config_.env, config_.seed ^ 0xE7A1ull);
  auto sched = make_scheduler("GreenNFV");
  NfController controller(env, *sched);
  const EvalResult eval = controller.run(8);
  result.tail_gbps = eval.mean_gbps;
  result.tail_energy_j = eval.mean_energy_j;
  result.tail_efficiency = eval.mean_efficiency;
  return result;
}

std::unique_ptr<Scheduler> GreenNfvTrainer::make_scheduler(
    const std::string& label) const {
  return std::make_unique<DdpgScheduler>(
      agent_, config_.env.spec,
      static_cast<std::size_t>(config_.env.num_chains),
      config_.env.window_s, label);
}

std::unique_ptr<Scheduler> train_best_scheduler(
    const TrainerConfig& base_config, const std::string& label,
    int candidates, int validation_windows) {
  GNFV_REQUIRE(candidates >= 1, "train_best: need >= 1 candidate");
  std::unique_ptr<Scheduler> best;
  double best_score = -1e300;
  for (int k = 0; k < candidates; ++k) {
    TrainerConfig config = base_config;
    config.seed = base_config.seed + 1000ull * static_cast<std::uint64_t>(k);
    GreenNfvTrainer trainer(config);
    (void)trainer.train();
    auto scheduler = trainer.make_scheduler(label);
    const EvalResult eval = evaluate_scheduler(
        config.env, *scheduler, validation_windows,
        base_config.seed ^ 0x5EEDFACEull);
    const double score =
        config.env.sla.reward(eval.mean_gbps, eval.mean_energy_j);
    if (score > best_score) {
      best_score = score;
      best = std::move(scheduler);
    }
  }
  return best;
}

std::unique_ptr<Scheduler> train_qlearning_scheduler(
    const EnvConfig& env_config, int episodes, std::uint64_t seed,
    int state_levels, int action_levels) {
  NfvEnvironment env(env_config, seed);
  const auto num_chains = static_cast<std::size_t>(env_config.num_chains);
  // The tied formulation (see QLearningScheduler): the tabular agent sees
  // the aggregated 4-signal state and emits one 5-knob action shared by
  // every chain — the best a k^5 table can afford.
  rl::QLearningConfig qconfig;
  qconfig.state_dim = 4;
  qconfig.action_dim = 5;
  qconfig.state_levels = state_levels;
  qconfig.action_levels = action_levels;
  auto agent = std::make_shared<rl::QLearningAgent>(qconfig, seed);

  const StateCodec codec(env_config.spec, num_chains, env_config.window_s);
  for (int episode = 0; episode < episodes; ++episode) {
    (void)env.reset(seed + 7919ull * static_cast<std::uint64_t>(episode));
    std::vector<double> state = QLearningScheduler::aggregate_state(
        env.last_outcome().observations, codec);
    bool done = false;
    while (!done) {
      const std::vector<double> tied = agent->act(state);
      auto sr = env.step(
          QLearningScheduler::expand_action(tied, num_chains));
      const std::vector<double> next_state =
          QLearningScheduler::aggregate_state(
              env.last_outcome().observations, codec);
      agent->update(state, tied, sr.reward, next_state, sr.done);
      state = next_state;
      done = sr.done;
    }
  }
  return std::make_unique<QLearningScheduler>(agent, env_config.spec,
                                              num_chains,
                                              env_config.window_s);
}

}  // namespace greennfv::core
