#include "core/ee_pstate.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math_util.hpp"

namespace greennfv::core {

DesPredictor::DesPredictor(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  GNFV_REQUIRE(alpha > 0.0 && alpha <= 1.0, "DES: alpha out of (0,1]");
  GNFV_REQUIRE(beta >= 0.0 && beta <= 1.0, "DES: beta out of [0,1]");
}

double DesPredictor::update(double value) {
  if (!primed_) {
    level_ = value;
    trend_ = 0.0;
    primed_ = true;
    return forecast();
  }
  const double prev_level = level_;
  level_ = alpha_ * value + (1.0 - alpha_) * (level_ + trend_);
  trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  return forecast();
}

double DesPredictor::forecast() const { return level_ + trend_; }

void DesPredictor::reset() {
  level_ = 0.0;
  trend_ = 0.0;
  primed_ = false;
}

EePstateScheduler::EePstateScheduler(const hwmodel::NodeSpec& spec,
                                     EePstateConfig config)
    : spec_(spec), dvfs_(spec), config_(std::move(config)) {
  GNFV_REQUIRE(!config_.thresholds.empty(), "EE-Pstate: no thresholds");
  GNFV_REQUIRE(std::is_sorted(config_.thresholds.begin(),
                              config_.thresholds.end()),
               "EE-Pstate: thresholds must ascend");
}

int EePstateScheduler::pstate_for_load(double load_fraction) const {
  const double load = math_util::clamp(load_fraction, 0.0, 1.0);
  // Band index = number of thresholds below the load.
  std::size_t band = 0;
  while (band < config_.thresholds.size() &&
         load >= config_.thresholds[band]) {
    ++band;
  }
  // Spread bands across the ladder: band 0 -> lowest P-state, top band ->
  // highest.
  const int num_bands = static_cast<int>(config_.thresholds.size()) + 1;
  const int ladder_max = dvfs_.max_pstate();
  return static_cast<int>(
      std::lround(static_cast<double>(band) /
                  static_cast<double>(num_bands - 1) * ladder_max));
}

std::vector<nfvsim::ChainKnobs> EePstateScheduler::decide(
    const std::vector<ChainObservation>& obs,
    const std::vector<nfvsim::ChainKnobs>& current) {
  GNFV_REQUIRE(obs.size() == current.size(), "EE-Pstate: size mismatch");
  if (predictors_.size() != obs.size()) {
    predictors_.assign(obs.size(),
                       DesPredictor(config_.des_alpha, config_.des_beta));
    peak_arrival_pps_.assign(obs.size(), 1.0);
  }

  std::vector<nfvsim::ChainKnobs> knobs(obs.size(),
                                        nfvsim::baseline_knobs(spec_));
  for (std::size_t c = 0; c < obs.size(); ++c) {
    peak_arrival_pps_[c] =
        std::max(peak_arrival_pps_[c], obs[c].arrival_pps);
    const double predicted = predictors_[c].update(obs[c].arrival_pps);
    const double load_fraction =
        peak_arrival_pps_[c] > 0.0
            ? math_util::clamp(predicted / peak_arrival_pps_[c], 0.0, 1.0)
            : 0.0;
    nfvsim::ChainKnobs& k = knobs[c];
    k.cores = 3.0;  // same static one-core-per-NF deployment
    k.freq_ghz = dvfs_.frequency_ghz(pstate_for_load(load_fraction));
    // "leaves other control knobs without optimization": stock-platform
    // defaults — small burst, default DMA ring, no CAT.
    k.batch = 3;
    k = k.clamped(spec_);
  }
  return knobs;
}

void EePstateScheduler::reset() {
  predictors_.clear();
  peak_arrival_pps_.clear();
}

}  // namespace greennfv::core
