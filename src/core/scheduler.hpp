#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/spaces.hpp"
#include "nfvsim/controller.hpp"
#include "nfvsim/knobs.hpp"

/// \file scheduler.hpp
/// Common contract for every resource-scheduling model the paper compares
/// in Fig. 9: Baseline, Heuristics (Algorithm 1), EE-Pstate, Q-Learning,
/// and the three GreenNFV SLA policies. A scheduler sees the per-chain
/// observations from the last control window and emits the next knob
/// configuration; the evaluation harness treats all of them identically.

namespace greennfv::core {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Next knob settings given the last window's observations. `current`
  /// holds the settings that produced those observations.
  [[nodiscard]] virtual std::vector<nfvsim::ChainKnobs> decide(
      const std::vector<ChainObservation>& obs,
      const std::vector<nfvsim::ChainKnobs>& current) = 0;

  /// Whether this model partitions the LLC with CAT.
  [[nodiscard]] virtual bool wants_cat() const { return true; }

  /// NF scheduling discipline this model runs under.
  [[nodiscard]] virtual nfvsim::SchedMode sched_mode() const {
    return nfvsim::SchedMode::kHybrid;
  }

  /// Clears adaptive state between evaluation runs.
  virtual void reset() {}
};

/// The paper's baseline: "uses a Performance power governor, and all other
/// components are set to default values" — static knobs, pure polling, no
/// CAT.
class BaselineScheduler final : public Scheduler {
 public:
  explicit BaselineScheduler(const hwmodel::NodeSpec& spec);

  [[nodiscard]] std::string name() const override { return "Baseline"; }
  [[nodiscard]] std::vector<nfvsim::ChainKnobs> decide(
      const std::vector<ChainObservation>& obs,
      const std::vector<nfvsim::ChainKnobs>& current) override;
  [[nodiscard]] bool wants_cat() const override { return false; }
  [[nodiscard]] nfvsim::SchedMode sched_mode() const override {
    return nfvsim::SchedMode::kPoll;
  }

 private:
  nfvsim::ChainKnobs knobs_;
};

}  // namespace greennfv::core
