#pragma once

#include <memory>

#include "core/scheduler.hpp"
#include "core/spaces.hpp"
#include "rl/ddpg.hpp"
#include "rl/qlearning.hpp"

/// \file rl_schedulers.hpp
/// Scheduler adapters around the learning agents: the trained DDPG policy
/// (GreenNFV proper, one instance per SLA) and the discretized Q-learning
/// comparison model. Both translate observations through the shared codecs
/// so their action geometry matches exactly.

namespace greennfv::core {

class DdpgScheduler final : public Scheduler {
 public:
  /// Takes shared ownership of a trained agent (the trainer keeps
  /// training; evaluation snapshots share parameters by value).
  DdpgScheduler(std::shared_ptr<const rl::DdpgAgent> agent,
                const hwmodel::NodeSpec& spec, std::size_t num_chains,
                double window_s, std::string label);

  [[nodiscard]] std::string name() const override { return label_; }
  [[nodiscard]] std::vector<nfvsim::ChainKnobs> decide(
      const std::vector<ChainObservation>& obs,
      const std::vector<nfvsim::ChainKnobs>& current) override;

 private:
  std::shared_ptr<const rl::DdpgAgent> agent_;
  StateCodec state_codec_;
  ActionCodec action_codec_;
  std::string label_;
  // decide() is per-instance serial (one scheduler per evaluation run), so
  // the inference scratch can live here and keep the loop allocation-free.
  rl::DdpgAgent::ActScratch scratch_;
  std::vector<double> action_;
};

/// The Q-learning comparison model. Per the paper (§4.3), discretizing the
/// full per-chain action space explodes as O(n * k^5); a tabular agent can
/// only afford the *tied* reduction — one aggregated 4-signal state, one
/// 5-knob action applied to every chain (243 actions at k=3). That
/// coarseness is precisely the handicap Fig. 9 quantifies.
class QLearningScheduler final : public Scheduler {
 public:
  QLearningScheduler(std::shared_ptr<rl::QLearningAgent> agent,
                     const hwmodel::NodeSpec& spec, std::size_t num_chains,
                     double window_s);

  [[nodiscard]] std::string name() const override { return "Q-Learning"; }
  [[nodiscard]] std::vector<nfvsim::ChainKnobs> decide(
      const std::vector<ChainObservation>& obs,
      const std::vector<nfvsim::ChainKnobs>& current) override;

  /// Aggregated (mean-over-chains) 4-signal state in [-1,1]^4.
  [[nodiscard]] static std::vector<double> aggregate_state(
      const std::vector<ChainObservation>& obs, const StateCodec& codec);

  /// Expands a tied 5-dim action to the full per-chain action vector.
  [[nodiscard]] static std::vector<double> expand_action(
      std::span<const double> tied, std::size_t num_chains);

 private:
  std::shared_ptr<rl::QLearningAgent> agent_;
  StateCodec state_codec_;
  ActionCodec action_codec_;
};

}  // namespace greennfv::core
