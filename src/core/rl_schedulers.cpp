#include "core/rl_schedulers.hpp"

#include "common/assert.hpp"

namespace greennfv::core {

DdpgScheduler::DdpgScheduler(std::shared_ptr<const rl::DdpgAgent> agent,
                             const hwmodel::NodeSpec& spec,
                             std::size_t num_chains, double window_s,
                             std::string label)
    : agent_(std::move(agent)),
      state_codec_(spec, num_chains, window_s),
      action_codec_(spec, num_chains),
      label_(std::move(label)) {
  GNFV_REQUIRE(agent_ != nullptr, "DdpgScheduler: null agent");
  GNFV_REQUIRE(agent_->config().state_dim == state_codec_.state_dim(),
               "DdpgScheduler: state dim mismatch");
  GNFV_REQUIRE(agent_->config().action_dim == action_codec_.action_dim(),
               "DdpgScheduler: action dim mismatch");
}

std::vector<nfvsim::ChainKnobs> DdpgScheduler::decide(
    const std::vector<ChainObservation>& obs,
    const std::vector<nfvsim::ChainKnobs>& current) {
  (void)current;
  const std::vector<double> state = state_codec_.encode(obs);
  action_.resize(agent_->config().action_dim);
  agent_->act_into(state, scratch_, action_);
  return action_codec_.decode(action_);
}

QLearningScheduler::QLearningScheduler(
    std::shared_ptr<rl::QLearningAgent> agent,
    const hwmodel::NodeSpec& spec, std::size_t num_chains, double window_s)
    : agent_(std::move(agent)),
      state_codec_(spec, num_chains, window_s),
      action_codec_(spec, num_chains) {
  GNFV_REQUIRE(agent_ != nullptr, "QLearningScheduler: null agent");
  GNFV_REQUIRE(agent_->config_state_dim() == 4,
               "QLearningScheduler: expects the tied 4-signal state");
}

std::vector<double> QLearningScheduler::aggregate_state(
    const std::vector<ChainObservation>& obs, const StateCodec& codec) {
  GNFV_REQUIRE(!obs.empty(), "aggregate_state: no observations");
  // Mean each signal over chains, then reuse the per-chain normalization
  // by encoding a single synthetic observation.
  ChainObservation mean;
  for (const auto& o : obs) {
    mean.throughput_gbps += o.throughput_gbps;
    mean.energy_j += o.energy_j;
    mean.busy_cores += o.busy_cores;
    mean.arrival_pps += o.arrival_pps;
  }
  const auto n = static_cast<double>(obs.size());
  mean.throughput_gbps /= n;
  mean.energy_j /= n;
  mean.busy_cores /= n;
  mean.arrival_pps /= n;
  const StateCodec single(hwmodel::NodeSpec{}, 1, 1.0);
  (void)codec;
  return single.encode({mean});
}

std::vector<double> QLearningScheduler::expand_action(
    std::span<const double> tied, std::size_t num_chains) {
  GNFV_REQUIRE(tied.size() == 5, "expand_action: tied action must be 5-dim");
  std::vector<double> full;
  full.reserve(5 * num_chains);
  for (std::size_t c = 0; c < num_chains; ++c)
    full.insert(full.end(), tied.begin(), tied.end());
  return full;
}

std::vector<nfvsim::ChainKnobs> QLearningScheduler::decide(
    const std::vector<ChainObservation>& obs,
    const std::vector<nfvsim::ChainKnobs>& current) {
  (void)current;
  const std::vector<double> state = aggregate_state(obs, state_codec_);
  const std::vector<double> tied = agent_->act_greedy(state);
  return action_codec_.decode(
      expand_action(tied, action_codec_.num_chains()));
}

}  // namespace greennfv::core
