#pragma once

#include <span>
#include <vector>

#include "hwmodel/node_spec.hpp"
#include "nfvsim/engine_analytic.hpp"
#include "nfvsim/knobs.hpp"

/// \file spaces.hpp
/// The paper's state and action spaces (§4.3.1):
///
///   X_i = { T_i, E_i, ξ_i, Ω_i }   (Eq. 8) — throughput, energy,
///                                   CPU utilization, packet arrival rate
///   A_i = { c_i, cf_i, llc_i, b_i, bs_i }  (Eq. 7) — CPU cores, CPU
///                                   frequency, LLC share, DMA buffer,
///                                   batch size
///
/// Both are flattened over chains and normalized to [-1, 1] for the DDPG
/// networks. The codecs own the scaling constants so every agent (DDPG,
/// Q-learning) and every baseline sees identical geometry.

namespace greennfv::core {

/// Per-chain observation in engineering units.
struct ChainObservation {
  double throughput_gbps = 0.0;  ///< T_i
  double energy_j = 0.0;         ///< E_i (attributed, last control window)
  double busy_cores = 0.0;       ///< ξ_i (1.0 == 100% of one core)
  double arrival_pps = 0.0;      ///< Ω_i
};

class StateCodec {
 public:
  StateCodec(const hwmodel::NodeSpec& spec, std::size_t num_chains,
             double window_s);

  [[nodiscard]] std::size_t num_chains() const { return num_chains_; }
  [[nodiscard]] std::size_t state_dim() const { return 4 * num_chains_; }

  /// Flattens and normalizes per-chain observations to [-1,1]^state_dim.
  [[nodiscard]] std::vector<double> encode(
      const std::vector<ChainObservation>& obs) const;

  /// Builds observations straight from an engine run summary.
  [[nodiscard]] static std::vector<ChainObservation> observe(
      const nfvsim::AnalyticEngine::RunSummary& summary);

 private:
  std::size_t num_chains_;
  double max_gbps_;
  double max_energy_j_;
  double max_cores_;
  double max_pps_;
};

class ActionCodec {
 public:
  ActionCodec(const hwmodel::NodeSpec& spec, std::size_t num_chains);

  [[nodiscard]] std::size_t num_chains() const { return num_chains_; }
  [[nodiscard]] std::size_t action_dim() const { return 5 * num_chains_; }

  /// Decodes a normalized action in [-1,1]^action_dim into per-chain knob
  /// settings (clamped to hardware limits).
  [[nodiscard]] std::vector<nfvsim::ChainKnobs> decode(
      std::span<const double> action) const;

  /// Encodes knob settings back to normalized coordinates (round-trip
  /// inverse of decode up to clamping/rounding; used by tests and by
  /// warm-starting from a known configuration).
  [[nodiscard]] std::vector<double> encode(
      const std::vector<nfvsim::ChainKnobs>& knobs) const;

 private:
  hwmodel::NodeSpec spec_;
  std::size_t num_chains_;
  double min_dma_mib_;
  double max_dma_mib_;
};

}  // namespace greennfv::core
