#pragma once

#include <memory>
#include <optional>

#include "core/sla.hpp"
#include "core/spaces.hpp"
#include "nfvsim/engine_analytic.hpp"
#include "rl/env.hpp"

/// \file environment.hpp
/// The NFV control environment the RL agents train against. One `step` is
/// one measurement window of the paper's evaluation: the agent's action
/// reconfigures every chain's five knobs, the simulator runs `window_s` of
/// virtual time under live traffic, and the SLA converts (ΣT, E) into the
/// reward. States are the Eq.-8 tuples {T, E, ξ, Ω} per chain.

namespace greennfv::core {

struct EnvConfig {
  hwmodel::NodeSpec spec;
  int num_chains = 3;
  int num_flows = 5;                 ///< paper §5.1: "use five flows"
  double total_offered_gbps = 12.0;  ///< aggregate offered load
  /// One control/measurement window (one RL step) in virtual seconds.
  double window_s = 10.0;
  /// Sub-windows per step (traffic variation resolution inside a window).
  int sub_windows = 5;
  int steps_per_episode = 8;
  Sla sla = Sla::energy_efficiency();
  /// Use gated rewards (paper) or shaped rewards (ablation).
  bool shaped_reward = false;
  /// Explicit traffic mix. Empty -> the standard §5 workload
  /// (traffic::make_eval_flows over num_flows/total_offered_gbps). When
  /// set, num_flows/total_offered_gbps are ignored for generation.
  std::vector<traffic::FlowSpec> flows;
  /// Per-chain NF compositions (catalog names). Empty -> the standard
  /// heterogeneous rotation (nfvsim::standard_chain_nfs). When set, must
  /// hold exactly num_chains entries.
  std::vector<std::vector<std::string>> chain_nfs;
  /// Macroscopic offered-load envelope (scenario workloads: diurnal,
  /// flash crowd...). Steady by default — bit-transparent.
  traffic::RateProfile rate_profile;
};

class NfvEnvironment final : public rl::Environment {
 public:
  NfvEnvironment(EnvConfig config, std::uint64_t seed);

  [[nodiscard]] std::size_t state_dim() const override;
  [[nodiscard]] std::size_t action_dim() const override;
  [[nodiscard]] std::vector<double> reset(std::uint64_t seed) override;
  [[nodiscard]] StepResult step(std::span<const double> action) override;

  /// Applies explicit knob settings instead of a normalized action and runs
  /// one window — the entry point for the non-RL schedulers (baseline,
  /// heuristic, EE-Pstate) so every model is measured by identical code.
  struct WindowOutcome {
    double throughput_gbps = 0.0;
    double energy_j = 0.0;
    double reward = 0.0;
    double efficiency = 0.0;
    double drop_fraction = 0.0;  ///< offered packets not delivered
    double offered_pps = 0.0;    ///< what the traffic generator pushed
    bool sla_satisfied = false;
    std::vector<ChainObservation> observations;
  };
  WindowOutcome run_window(const std::vector<nfvsim::ChainKnobs>& knobs);

  // --- introspection for telemetry/benches -----------------------------------
  [[nodiscard]] const EnvConfig& config() const { return config_; }
  [[nodiscard]] const StateCodec& state_codec() const { return state_codec_; }
  [[nodiscard]] const ActionCodec& action_codec() const {
    return action_codec_;
  }
  [[nodiscard]] const WindowOutcome& last_outcome() const {
    return last_outcome_;
  }
  [[nodiscard]] const std::vector<nfvsim::ChainKnobs>& last_knobs() const {
    return last_knobs_;
  }
  [[nodiscard]] nfvsim::OnvmController& controller() { return *controller_; }
  /// The live traffic generator (SDN flow steering hooks in here).
  [[nodiscard]] traffic::TrafficGenerator& generator() {
    return engine_->generator();
  }

  /// Re-zeros the rate-profile clock (see TrafficGenerator::
  /// anchor_rate_profile): the evaluation harness calls this after warmup
  /// so every model meets a non-steady profile at the same measured time.
  void align_rate_profile() { engine_->generator().anchor_rate_profile(); }

  /// Phase variant: the profile clock currently reads `profile_time_s` —
  /// how a node environment rebuilt mid-run (fleet membership change)
  /// stays on the experiment's absolute load shape.
  void align_rate_profile(double profile_time_s) {
    engine_->generator().anchor_rate_profile(profile_time_s);
  }

  /// Mean knob values across chains (what Figs 6-8 plot per episode).
  [[nodiscard]] nfvsim::ChainKnobs mean_knobs() const;

 private:
  EnvConfig config_;
  std::unique_ptr<nfvsim::OnvmController> controller_;
  std::unique_ptr<nfvsim::AnalyticEngine> engine_;
  StateCodec state_codec_;
  ActionCodec action_codec_;
  WindowOutcome last_outcome_;
  std::vector<nfvsim::ChainKnobs> last_knobs_;
  int steps_in_episode_ = 0;

  [[nodiscard]] std::vector<double> encode_state() const;
};

/// Builds the standard evaluation node: `num_chains` heterogeneous 3-NF
/// chains behind one ONVM controller (hybrid scheduling, CAT on). Custom
/// per-chain NF compositions override the standard rotation when given.
[[nodiscard]] std::unique_ptr<nfvsim::OnvmController> make_eval_controller(
    const hwmodel::NodeSpec& spec, int num_chains,
    const std::vector<std::vector<std::string>>& chain_nfs = {});

}  // namespace greennfv::core
