#pragma once

#include <vector>

#include "core/scheduler.hpp"
#include "hwmodel/dvfs.hpp"

/// \file ee_pstate.hpp
/// The EE-Pstate comparator (Iqbal & John, "Efficient Traffic Aware Power
/// Management in Multicore Communications Processors", ANCS'12) as the
/// paper describes it: "a threshold-based approach to decide on P-state.
/// They also use simple predictors like Double Exponent Smoothing (DES)
/// for traffic prediction" and "uses thresholding on the p-state level of
/// the processor cores and leaves other control knobs without
/// optimization."
///
/// Per chain: a DES predictor forecasts next-window packet arrival; the
/// forecast (as a fraction of the chain's observed peak) is thresholded
/// into a P-state. Idle windows allow C-state residency, which is what the
/// hybrid scheduling mode models.

namespace greennfv::core {

/// Holt's double exponential smoothing: level + trend.
class DesPredictor {
 public:
  DesPredictor(double alpha = 0.4, double beta = 0.3);

  /// Feeds an observation; returns the one-step-ahead forecast.
  double update(double value);

  [[nodiscard]] double forecast() const;
  [[nodiscard]] bool primed() const { return primed_; }
  void reset();

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  bool primed_ = false;
};

struct EePstateConfig {
  /// Load-fraction thresholds (ascending) mapping to P-state bands; a
  /// forecast below thresholds[i] selects band i of the ladder.
  std::vector<double> thresholds = {0.25, 0.5, 0.75};
  double des_alpha = 0.4;
  double des_beta = 0.3;
};

class EePstateScheduler final : public Scheduler {
 public:
  EePstateScheduler(const hwmodel::NodeSpec& spec, EePstateConfig config);

  [[nodiscard]] std::string name() const override { return "EE-Pstate"; }
  [[nodiscard]] std::vector<nfvsim::ChainKnobs> decide(
      const std::vector<ChainObservation>& obs,
      const std::vector<nfvsim::ChainKnobs>& current) override;
  /// EE-Pstate manages P/C-states only; no CAT.
  [[nodiscard]] bool wants_cat() const override { return false; }
  void reset() override;

  /// Exposed for tests: the P-state chosen for a load fraction in [0,1].
  [[nodiscard]] int pstate_for_load(double load_fraction) const;

 private:
  hwmodel::NodeSpec spec_;
  hwmodel::DvfsController dvfs_;
  EePstateConfig config_;
  std::vector<DesPredictor> predictors_;
  std::vector<double> peak_arrival_pps_;
};

}  // namespace greennfv::core
