#include "core/heuristic.hpp"

#include <algorithm>
#include <numeric>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "core/sla.hpp"

namespace greennfv::core {

HeuristicScheduler::HeuristicScheduler(const hwmodel::NodeSpec& spec,
                                       HeuristicConfig config)
    : spec_(spec), dvfs_(spec), config_(config) {}

std::vector<nfvsim::ChainKnobs> HeuristicScheduler::initial_allocation(
    const std::vector<ChainObservation>& obs) const {
  // Lines 1-6 of Algorithm 1.
  std::vector<nfvsim::ChainKnobs> knobs(obs.size());
  const double total_arrival = std::accumulate(
      obs.begin(), obs.end(), 0.0,
      [](double acc, const ChainObservation& o) {
        return acc + o.arrival_pps;
      });
  const double median_freq =
      dvfs_.frequency_ghz(dvfs_.num_pstates() / 2);  // line 3
  for (std::size_t c = 0; c < obs.size(); ++c) {
    nfvsim::ChainKnobs& k = knobs[c];
    // Lines 1-2: one core per NF, evenly.
    k.cores = static_cast<double>(config_.nfs_per_chain);
    k.freq_ghz = median_freq; // line 3
    k.batch = 2;              // line 4
    // Line 5: LLC proportional to flow rate.
    k.llc_fraction =
        total_arrival > 0.0
            ? std::max(nfvsim::ChainKnobs::kMinLlcFraction,
                       obs[c].arrival_pps / total_arrival)
            : 1.0 / static_cast<double>(obs.size());
    // Line 6: DMA = LLC_size / packet_size * batch_size. With pkt unknown
    // at this layer we use the allocatable share in bytes over a nominal
    // 512 B frame, floored at several batches of mbuf-ring coverage.
    const double llc_bytes =
        k.llc_fraction *
        static_cast<double>(spec_.allocatable_llc_bytes());
    const auto formula_bytes = static_cast<std::uint64_t>(
        llc_bytes / 512.0 * static_cast<double>(k.batch));
    const std::uint64_t coverage_floor =
        static_cast<std::uint64_t>(k.batch) * 2048ull * 16ull;
    k.dma_bytes = std::max(formula_bytes, coverage_floor);
    k = k.clamped(spec_);
  }
  return knobs;
}

std::vector<nfvsim::ChainKnobs> HeuristicScheduler::decide(
    const std::vector<ChainObservation>& obs,
    const std::vector<nfvsim::ChainKnobs>& current) {
  GNFV_REQUIRE(obs.size() == current.size(), "heuristic: size mismatch");
  if (!initialized_) {
    state_ = initial_allocation(obs);
    initialized_ = true;
    return state_;
  }

  // Lines 7-16: periodic per-chain feedback control.
  for (std::size_t c = 0; c < obs.size(); ++c) {
    nfvsim::ChainKnobs& k = state_[c];
    const double lambda =
        Sla::efficiency(obs[c].throughput_gbps, obs[c].energy_j);
    if (lambda < config_.threshold1) {
      k.freq_ghz = dvfs_.step_down(k.freq_ghz);  // lines 9-10
    } else {
      k.freq_ghz = dvfs_.step_up(k.freq_ghz);    // lines 11-12
    }
    if (lambda < config_.threshold2) {
      k.batch = k.batch + 1;                      // lines 13-14
    } else {
      k.batch = k.batch > nfvsim::ChainKnobs::kMinBatch
                    ? k.batch - 1
                    : k.batch;                    // lines 15-16
    }
    // Line 6 is a function of the batch size, so the derived DMA buffer is
    // recomputed whenever the batch moves. The ring must at minimum cover
    // several batches of mbuf slots or the NIC starves between polls.
    const double llc_bytes =
        k.llc_fraction * static_cast<double>(spec_.allocatable_llc_bytes());
    const auto formula_bytes = static_cast<std::uint64_t>(
        llc_bytes / 512.0 * static_cast<double>(k.batch));
    const std::uint64_t coverage_floor =
        static_cast<std::uint64_t>(k.batch) * 2048ull * 16ull;
    k.dma_bytes = std::max(formula_bytes, coverage_floor);
    k = k.clamped(spec_);
  }
  return state_;
}

void HeuristicScheduler::reset() {
  initialized_ = false;
  state_.clear();
}

}  // namespace greennfv::core
