#include "core/sdn_controller.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace greennfv::core {

SdnController::SdnController(SdnConfig config) : config_(config) {
  GNFV_REQUIRE(config_.skew_threshold >= 1.0,
               "SDN: skew threshold below 1 would always trigger");
  GNFV_REQUIRE(config_.max_moves_per_rebalance >= 1,
               "SDN: need at least one move per rebalance");
}

double SdnController::skew(const std::vector<ChainObservation>& obs) {
  GNFV_REQUIRE(!obs.empty(), "SDN: no observations");
  double max_pps = 0.0;
  double sum_pps = 0.0;
  for (const auto& o : obs) {
    max_pps = std::max(max_pps, o.arrival_pps);
    sum_pps += o.arrival_pps;
  }
  const double mean = sum_pps / static_cast<double>(obs.size());
  return mean > 0.0 ? max_pps / mean : 1.0;
}

std::vector<FlowMove> SdnController::rebalance(
    const std::vector<ChainObservation>& obs,
    traffic::TrafficGenerator& generator) {
  ++windows_since_move_;
  if (windows_since_move_ <= config_.cooldown_windows) return {};
  if (skew(obs) < config_.skew_threshold) return {};

  // Hottest and coldest chains by arrival rate.
  std::size_t hot = 0;
  std::size_t cold = 0;
  for (std::size_t c = 1; c < obs.size(); ++c) {
    if (obs[c].arrival_pps > obs[hot].arrival_pps) hot = c;
    if (obs[c].arrival_pps < obs[cold].arrival_pps) cold = c;
  }
  if (hot == cold) return {};

  // Move the smallest flows off the hot chain — they relieve pressure with
  // the least disturbance to the cold chain (and real SDN rules prefer
  // re-steering mice over elephants).
  struct Candidate {
    std::size_t index;
    double rate;
  };
  std::vector<Candidate> candidates;
  const auto& flows = generator.flows();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].chain_index == static_cast<int>(hot)) {
      candidates.push_back({i, flows[i].mean_rate_pps});
    }
  }
  if (candidates.size() <= 1) return {};  // never empty a chain entirely
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.rate < b.rate;
            });

  std::vector<FlowMove> moves;
  const int budget =
      std::min<int>(config_.max_moves_per_rebalance,
                    static_cast<int>(candidates.size()) - 1);
  for (int m = 0; m < budget; ++m) {
    FlowMove move;
    move.flow_index = candidates[static_cast<std::size_t>(m)].index;
    move.from_chain = static_cast<int>(hot);
    move.to_chain = static_cast<int>(cold);
    generator.steer_flow(move.flow_index, move.to_chain);
    moves.push_back(move);
  }
  if (!moves.empty()) {
    windows_since_move_ = 0;
    ++rebalances_;
  }
  return moves;
}

void SdnController::reset() {
  windows_since_move_ = 1 << 20;
  rebalances_ = 0;
}

}  // namespace greennfv::core
