#include "core/spaces.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"

namespace greennfv::core {

namespace {

/// Maps a value in [lo, hi] to [-1, 1].
double to_unit(double x, double lo, double hi) {
  return math_util::remap(x, lo, hi, -1.0, 1.0);
}

/// Maps a coordinate in [-1, 1] to [lo, hi].
double from_unit(double u, double lo, double hi) {
  return math_util::remap(u, -1.0, 1.0, lo, hi);
}

}  // namespace

StateCodec::StateCodec(const hwmodel::NodeSpec& spec, std::size_t num_chains,
                       double window_s)
    : num_chains_(num_chains),
      max_gbps_(spec.line_rate_gbps),
      max_energy_j_(spec.p_max_w * window_s),
      max_cores_(nfvsim::ChainKnobs::kMaxCores),
      // Worst case arrival: line rate of minimum-size frames.
      max_pps_(units::gbps_to_bps(spec.line_rate_gbps) /
               units::wire_bits_per_frame(64)) {
  GNFV_REQUIRE(num_chains >= 1, "StateCodec: no chains");
  GNFV_REQUIRE(window_s > 0.0, "StateCodec: bad window");
}

std::vector<double> StateCodec::encode(
    const std::vector<ChainObservation>& obs) const {
  GNFV_REQUIRE(obs.size() == num_chains_, "StateCodec: chain count mismatch");
  std::vector<double> state;
  state.reserve(state_dim());
  for (const auto& o : obs) {
    state.push_back(to_unit(o.throughput_gbps, 0.0, max_gbps_));
    state.push_back(to_unit(o.energy_j, 0.0, max_energy_j_));
    state.push_back(to_unit(o.busy_cores, 0.0, max_cores_));
    state.push_back(to_unit(o.arrival_pps, 0.0, max_pps_));
  }
  return state;
}

std::vector<ChainObservation> StateCodec::observe(
    const nfvsim::AnalyticEngine::RunSummary& summary) {
  std::vector<ChainObservation> obs(summary.chain_gbps.size());
  for (std::size_t c = 0; c < obs.size(); ++c) {
    obs[c].throughput_gbps = summary.chain_gbps[c];
    obs[c].energy_j = summary.chain_energy_j[c];
    obs[c].busy_cores = summary.chain_busy_cores[c];
    obs[c].arrival_pps = summary.chain_arrival_pps[c];
  }
  return obs;
}

ActionCodec::ActionCodec(const hwmodel::NodeSpec& spec,
                         std::size_t num_chains)
    : spec_(spec),
      num_chains_(num_chains),
      min_dma_mib_(units::bytes_to_mib(nfvsim::ChainKnobs::kMinDmaBytes)),
      max_dma_mib_(spec.max_dma_buffer_mib) {
  GNFV_REQUIRE(num_chains >= 1, "ActionCodec: no chains");
}

std::vector<nfvsim::ChainKnobs> ActionCodec::decode(
    std::span<const double> action) const {
  GNFV_REQUIRE(action.size() == action_dim(),
               "ActionCodec::decode: dimension mismatch");
  std::vector<nfvsim::ChainKnobs> knobs(num_chains_);
  for (std::size_t c = 0; c < num_chains_; ++c) {
    const std::size_t base = 5 * c;
    nfvsim::ChainKnobs& k = knobs[c];
    k.cores = from_unit(action[base + 0], nfvsim::ChainKnobs::kMinCores,
                        nfvsim::ChainKnobs::kMaxCores);
    k.freq_ghz = from_unit(action[base + 1], spec_.fmin_ghz, spec_.fmax_ghz);
    k.llc_fraction =
        from_unit(action[base + 2], nfvsim::ChainKnobs::kMinLlcFraction,
                  nfvsim::ChainKnobs::kMaxLlcFraction);
    k.dma_bytes = units::mib_to_bytes(
        from_unit(action[base + 3], min_dma_mib_, max_dma_mib_));
    k.batch = static_cast<std::uint32_t>(std::lround(from_unit(
        action[base + 4], nfvsim::ChainKnobs::kMinBatch,
        nfvsim::ChainKnobs::kMaxBatch)));
    k = k.clamped(spec_);
  }
  return knobs;
}

std::vector<double> ActionCodec::encode(
    const std::vector<nfvsim::ChainKnobs>& knobs) const {
  GNFV_REQUIRE(knobs.size() == num_chains_,
               "ActionCodec::encode: chain count mismatch");
  std::vector<double> action;
  action.reserve(action_dim());
  for (const auto& k : knobs) {
    action.push_back(to_unit(k.cores, nfvsim::ChainKnobs::kMinCores,
                             nfvsim::ChainKnobs::kMaxCores));
    action.push_back(to_unit(k.freq_ghz, spec_.fmin_ghz, spec_.fmax_ghz));
    action.push_back(to_unit(k.llc_fraction,
                             nfvsim::ChainKnobs::kMinLlcFraction,
                             nfvsim::ChainKnobs::kMaxLlcFraction));
    action.push_back(to_unit(units::bytes_to_mib(k.dma_bytes), min_dma_mib_,
                             max_dma_mib_));
    action.push_back(to_unit(static_cast<double>(k.batch),
                             nfvsim::ChainKnobs::kMinBatch,
                             nfvsim::ChainKnobs::kMaxBatch));
  }
  return action;
}

}  // namespace greennfv::core
