#pragma once

#include <vector>

#include "core/scheduler.hpp"
#include "hwmodel/dvfs.hpp"

/// \file heuristic.hpp
/// The paper's Algorithm 1 — "Baseline Heuristics Algorithm":
///
///   1  Allocate cores and frequencies evenly to each NF
///   2  cores <- 1
///   3  core_frequency <- median(core_frequency)
///   4  batch_size <- 2
///   5  LLC_size <- proportion to flow rate
///   6  DMA_buffer_size <- LLC_size / packet_size * batch_size
///   7  Periodically check throughput and energy:
///   8    λ <- throughput / energy_consumed
///   9    if λ < threshold1: step core_frequency down
///  11    else: step core_frequency up
///  13    if λ < threshold2: batch_size += 1 else batch_size -= 1
///
/// The thresholds are energy-efficiency levels (Gbps/KJ); defaults put
/// threshold1 below and threshold2 above the baseline's operating point so
/// the controller oscillates toward better efficiency, exactly the "slow
/// to converge" behaviour §5.1 describes.

namespace greennfv::core {

struct HeuristicConfig {
  double threshold1 = 1.0;  ///< λ below this -> lower frequency
  double threshold2 = 6.0;  ///< λ below this -> grow batch
  /// Line 1 allocates "cores ... evenly to each NF", one core per NF; the
  /// standard evaluation chains carry three NFs.
  int nfs_per_chain = 3;
};

class HeuristicScheduler final : public Scheduler {
 public:
  HeuristicScheduler(const hwmodel::NodeSpec& spec, HeuristicConfig config);

  [[nodiscard]] std::string name() const override { return "Heuristics"; }
  [[nodiscard]] std::vector<nfvsim::ChainKnobs> decide(
      const std::vector<ChainObservation>& obs,
      const std::vector<nfvsim::ChainKnobs>& current) override;
  void reset() override;

 private:
  hwmodel::NodeSpec spec_;
  hwmodel::DvfsController dvfs_;
  HeuristicConfig config_;
  bool initialized_ = false;
  std::vector<nfvsim::ChainKnobs> state_;

  [[nodiscard]] std::vector<nfvsim::ChainKnobs> initial_allocation(
      const std::vector<ChainObservation>& obs) const;
};

}  // namespace greennfv::core
