#include "core/environment.hpp"

#include "common/assert.hpp"
#include "common/string_util.hpp"
#include "traffic/generator.hpp"

namespace greennfv::core {

std::unique_ptr<nfvsim::OnvmController> make_eval_controller(
    const hwmodel::NodeSpec& spec, int num_chains,
    const std::vector<std::vector<std::string>>& chain_nfs) {
  GNFV_REQUIRE(chain_nfs.empty() ||
                   chain_nfs.size() == static_cast<std::size_t>(num_chains),
               "make_eval_controller: chain_nfs must match num_chains");
  auto controller = std::make_unique<nfvsim::OnvmController>(
      spec, nfvsim::SchedMode::kHybrid);
  for (int c = 0; c < num_chains; ++c) {
    controller->add_chain(
        format("chain%d", c),
        chain_nfs.empty() ? nfvsim::standard_chain_nfs(c)
                          : chain_nfs[static_cast<std::size_t>(c)]);
  }
  return controller;
}

NfvEnvironment::NfvEnvironment(EnvConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      controller_(make_eval_controller(config_.spec, config_.num_chains,
                                       config_.chain_nfs)),
      state_codec_(config_.spec,
                   static_cast<std::size_t>(config_.num_chains),
                   config_.window_s),
      action_codec_(config_.spec,
                    static_cast<std::size_t>(config_.num_chains)) {
  GNFV_REQUIRE(config_.num_chains >= 1, "env: need >= 1 chain");
  GNFV_REQUIRE(config_.flows.empty() ? config_.num_flows >= 1
                                     : true,
               "env: need >= 1 flow");
  GNFV_REQUIRE(config_.window_s > 0.0, "env: bad window");
  GNFV_REQUIRE(config_.sub_windows >= 1, "env: bad sub-window count");
  engine_ = std::make_unique<nfvsim::AnalyticEngine>(
      *controller_,
      traffic::TrafficGenerator(
          config_.flows.empty()
              ? traffic::make_eval_flows(config_.num_flows,
                                         config_.num_chains,
                                         config_.total_offered_gbps, seed)
              : config_.flows,
          seed));
  engine_->generator().set_rate_profile(config_.rate_profile);
  last_knobs_.assign(static_cast<std::size_t>(config_.num_chains),
                     nfvsim::baseline_knobs(config_.spec));
}

std::size_t NfvEnvironment::state_dim() const {
  return state_codec_.state_dim();
}

std::size_t NfvEnvironment::action_dim() const {
  return action_codec_.action_dim();
}

NfvEnvironment::WindowOutcome NfvEnvironment::run_window(
    const std::vector<nfvsim::ChainKnobs>& knobs) {
  GNFV_REQUIRE(knobs.size() == controller_->num_chains(),
               "run_window: knob count mismatch");
  last_knobs_.clear();
  for (std::size_t c = 0; c < knobs.size(); ++c) {
    last_knobs_.push_back(controller_->apply_knobs(c, knobs[c]));
  }

  const double dt = config_.window_s / config_.sub_windows;
  const auto summary = engine_->run(config_.sub_windows, dt);

  WindowOutcome outcome;
  outcome.throughput_gbps = summary.mean_gbps;
  outcome.energy_j = summary.energy_j;
  outcome.drop_fraction = summary.drop_fraction;
  outcome.offered_pps = summary.mean_offered_pps;
  outcome.sla_satisfied =
      config_.sla.satisfied(outcome.throughput_gbps, outcome.energy_j);
  outcome.reward =
      config_.shaped_reward
          ? config_.sla.shaped_reward(outcome.throughput_gbps,
                                      outcome.energy_j)
          : config_.sla.reward(outcome.throughput_gbps, outcome.energy_j);
  outcome.efficiency =
      Sla::efficiency(outcome.throughput_gbps, outcome.energy_j);
  outcome.observations = StateCodec::observe(summary);
  last_outcome_ = outcome;
  return outcome;
}

std::vector<double> NfvEnvironment::encode_state() const {
  return state_codec_.encode(last_outcome_.observations);
}

std::vector<double> NfvEnvironment::reset(std::uint64_t seed) {
  engine_->reset(seed);
  steps_in_episode_ = 0;
  // Settle one window at the *current* knob configuration. Algorithm 3's
  // controller runs continuously — episodes are a training artifact — so
  // the state distribution the policy trains on must match the closed loop
  // it will drive at deployment, not a baseline restart. (The very first
  // reset settles at the construction-time baseline knobs.)
  (void)run_window(last_knobs_);
  return encode_state();
}

rl::Environment::StepResult NfvEnvironment::step(
    std::span<const double> action) {
  const auto knobs = action_codec_.decode(action);
  (void)run_window(knobs);
  ++steps_in_episode_;

  StepResult result;
  result.next_state = encode_state();
  result.reward = last_outcome_.reward;
  result.done = steps_in_episode_ >= config_.steps_per_episode;
  return result;
}

nfvsim::ChainKnobs NfvEnvironment::mean_knobs() const {
  GNFV_REQUIRE(!last_knobs_.empty(), "mean_knobs: no window run yet");
  nfvsim::ChainKnobs mean;
  mean.cores = 0.0;
  mean.freq_ghz = 0.0;
  mean.llc_fraction = 0.0;
  mean.dma_bytes = 0;
  double dma = 0.0;
  double batch = 0.0;
  for (const auto& k : last_knobs_) {
    mean.cores += k.cores;
    mean.freq_ghz += k.freq_ghz;
    mean.llc_fraction += k.llc_fraction;
    dma += static_cast<double>(k.dma_bytes);
    batch += k.batch;
  }
  const auto n = static_cast<double>(last_knobs_.size());
  mean.cores /= n;
  mean.freq_ghz /= n;
  mean.llc_fraction /= n;
  mean.dma_bytes = static_cast<std::uint64_t>(dma / n);
  mean.batch = static_cast<std::uint32_t>(batch / n);
  return mean;
}

}  // namespace greennfv::core
