#pragma once

#include "core/environment.hpp"
#include "core/scheduler.hpp"
#include "telemetry/recorder.hpp"

/// \file nf_controller.hpp
/// The runtime NF controller (Algorithm 3, NF_CONTROLLER): once per control
/// window it collects the chains' state, asks its policy (any Scheduler)
/// for a resource allocation, reconfigures the platform, and logs the
/// outcome. This is the loop Fig. 10 plots over wall time, and the
/// evaluation harness behind Fig. 9's model comparison.

namespace greennfv::core {

/// Aggregate results of an evaluation run.
struct EvalResult {
  std::string scheduler;
  double mean_gbps = 0.0;
  double mean_energy_j = 0.0;     ///< per measurement window
  double mean_power_w = 0.0;
  double mean_efficiency = 0.0;   ///< λ, Gbps per KJ
  double sla_satisfaction = 0.0;  ///< fraction of windows meeting the SLA
  double drop_fraction = 0.0;     ///< mean fraction of offered pkts dropped
  int windows = 0;
};

class NfController {
 public:
  /// Borrows the environment and the policy. Configures the platform for
  /// the policy's CAT/scheduling preferences on construction.
  NfController(NfvEnvironment& env, Scheduler& scheduler);

  /// Runs `windows` control intervals. When `recorder` is non-null, the
  /// per-window series `<prefix>throughput_gbps`, `<prefix>energy_j`,
  /// `<prefix>power_w` and `<prefix>efficiency` are appended against the
  /// window start time in seconds.
  EvalResult run(int windows, telemetry::Recorder* recorder = nullptr,
                 const std::string& prefix = "");

  [[nodiscard]] NfvEnvironment& env() { return env_; }

 private:
  NfvEnvironment& env_;
  Scheduler& scheduler_;
};

/// Convenience: build a fresh environment (seeded), run `scheduler` on it
/// for `windows` control intervals after `warmup` unrecorded intervals,
/// and return the aggregate.
EvalResult evaluate_scheduler(const EnvConfig& config, Scheduler& scheduler,
                              int windows, std::uint64_t seed,
                              int warmup = 2,
                              telemetry::Recorder* recorder = nullptr,
                              const std::string& prefix = "");

}  // namespace greennfv::core
