#pragma once

#include <memory>

#include "core/environment.hpp"
#include "core/rl_schedulers.hpp"
#include "rl/apex.hpp"
#include "rl/per.hpp"
#include "telemetry/recorder.hpp"

/// \file greennfv.hpp
/// The GreenNFV façade: trains a DDPG policy for a given SLA (the
/// CENTRAL_LEARNER of Algorithm 3) either synchronously (one env, clean
/// per-episode curves — what the figure benches use) or distributed via
/// Ape-X actor threads, and packages the result as a Scheduler for the
/// evaluation harness.

namespace greennfv::core {

struct TrainerConfig {
  EnvConfig env;
  int episodes = 2000;
  /// Synchronous-mode replay: prioritized (paper) or uniform (ablation).
  bool prioritized_replay = true;
  rl::PerConfig per;
  /// DDPG hyperparameters (state/action dims are filled automatically).
  rl::DdpgConfig ddpg;
  /// Exploration noise. The floor keeps the continuing-control loop from
  /// freezing into a bad closed-loop attractor late in training.
  double noise_sigma = 0.3;
  double noise_decay = 0.9990;
  double noise_sigma_min = 0.05;
  /// Distributed mode (Ape-X threads) instead of the synchronous loop.
  bool use_apex = false;
  rl::ApexConfig apex;
  std::uint64_t seed = 42;
};

struct TrainResult {
  /// Converged tail (last 10% of episodes) means.
  double tail_gbps = 0.0;
  double tail_energy_j = 0.0;
  double tail_reward = 0.0;
  double tail_efficiency = 0.0;
  std::int64_t train_steps = 0;
  int episodes = 0;
};

class GreenNfvTrainer {
 public:
  explicit GreenNfvTrainer(TrainerConfig config);

  /// Trains the policy. When `curves` is non-null, per-episode series are
  /// recorded against the episode index — exactly the panels of Figs 6-8:
  ///   throughput_gbps, energy_j, efficiency, reward,
  ///   cpu_usage_pct, core_freq_ghz, llc_alloc_pct, dma_mib, batch.
  TrainResult train(telemetry::Recorder* curves = nullptr);

  /// Snapshot the trained policy as a Scheduler named after the SLA.
  [[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
      const std::string& label) const;

  [[nodiscard]] const rl::DdpgAgent& agent() const { return *agent_; }
  [[nodiscard]] const TrainerConfig& config() const { return config_; }

 private:
  TrainerConfig config_;
  std::shared_ptr<rl::DdpgAgent> agent_;

  TrainResult train_sync(telemetry::Recorder* curves);
  TrainResult train_apex(telemetry::Recorder* curves);
};

/// Trains the discretized Q-learning comparison model on the same
/// environment/SLA and returns it as a Scheduler.
std::unique_ptr<Scheduler> train_qlearning_scheduler(
    const EnvConfig& env_config, int episodes, std::uint64_t seed,
    int state_levels = 4, int action_levels = 3);

/// Trains `candidates` policies from different seeds and keeps the one
/// whose greedy rollout scores the highest SLA reward on a validation
/// traffic realization — standard model selection, needed because the
/// continuing-control loop has multiple attractors.
std::unique_ptr<Scheduler> train_best_scheduler(
    const TrainerConfig& base_config, const std::string& label,
    int candidates = 2, int validation_windows = 4);

}  // namespace greennfv::core
