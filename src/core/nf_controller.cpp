#include "core/nf_controller.hpp"

#include "common/assert.hpp"

namespace greennfv::core {

NfController::NfController(NfvEnvironment& env, Scheduler& scheduler)
    : env_(env), scheduler_(scheduler) {
  env_.controller().set_use_cat(scheduler_.wants_cat());
  env_.controller().set_sched_mode(scheduler_.sched_mode());
}

EvalResult NfController::run(int windows, telemetry::Recorder* recorder,
                             const std::string& prefix) {
  GNFV_REQUIRE(windows > 0, "NfController::run: windows must be positive");
  EvalResult result;
  result.scheduler = scheduler_.name();
  result.windows = windows;

  // Bootstrap observations: run one window at the scheduler's answer to
  // "no information" (collect-state happens before the first allocation in
  // Algorithm 3, here folded into a settling window).
  std::vector<ChainObservation> obs =
      env_.last_outcome().observations.empty()
          ? std::vector<ChainObservation>(env_.controller().num_chains())
          : env_.last_outcome().observations;

  double t = 0.0;
  for (int w = 0; w < windows; ++w) {
    const auto knobs = scheduler_.decide(obs, env_.last_knobs());
    const auto outcome = env_.run_window(knobs);
    obs = outcome.observations;

    result.mean_gbps += outcome.throughput_gbps;
    result.mean_energy_j += outcome.energy_j;
    result.mean_power_w += outcome.energy_j / env_.config().window_s;
    result.mean_efficiency += outcome.efficiency;
    result.sla_satisfaction += outcome.sla_satisfied ? 1.0 : 0.0;
    result.drop_fraction += outcome.drop_fraction;

    if (recorder != nullptr) {
      recorder->record(prefix + "throughput_gbps", t,
                       outcome.throughput_gbps);
      recorder->record(prefix + "energy_j", t, outcome.energy_j);
      recorder->record(prefix + "power_w", t,
                       outcome.energy_j / env_.config().window_s);
      recorder->record(prefix + "efficiency", t, outcome.efficiency);
      recorder->record(prefix + "drop_fraction", t, outcome.drop_fraction);
      recorder->record(prefix + "offered_pps", t, outcome.offered_pps);
    }
    t += env_.config().window_s;
  }

  const auto n = static_cast<double>(windows);
  result.mean_gbps /= n;
  result.mean_energy_j /= n;
  result.mean_power_w /= n;
  result.mean_efficiency /= n;
  result.sla_satisfaction /= n;
  result.drop_fraction /= n;
  return result;
}

EvalResult evaluate_scheduler(const EnvConfig& config, Scheduler& scheduler,
                              int windows, std::uint64_t seed, int warmup,
                              telemetry::Recorder* recorder,
                              const std::string& prefix) {
  NfvEnvironment env(config, seed);
  scheduler.reset();
  NfController controller(env, scheduler);
  if (warmup > 0) (void)controller.run(warmup);
  // Measurement defines t=0 for the macroscopic rate envelope: models with
  // different warmups must still meet a surge/swing at the same recorded
  // time, or the comparison measures different workloads.
  env.align_rate_profile();
  return controller.run(windows, recorder, prefix);
}

}  // namespace greennfv::core
