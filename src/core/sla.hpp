#pragma once

#include <string>

/// \file sla.hpp
/// The three service-level agreements of §4.1 and their reward signals
/// (§4.3.1 "Reward Signal"):
///
///   * Maximum Throughput (Eq. 1): argmax ΣT s.t. E <= E_SLA.
///   * Minimum Energy    (Eq. 2): argmin ΣE s.t. T >= T_SLA.
///   * Energy Efficiency (Eq. 3): argmax λ = T/E (unconstrained).
///
/// The paper gates rewards on constraint satisfaction ("The reward function
/// used in this SLA issues rewards only when the agent can meet the energy
/// SLA"), which we implement literally; a shaped variant is provided for
/// the ablation bench.

namespace greennfv::core {

enum class SlaKind { kMaxThroughput, kMinEnergy, kEnergyEfficiency };

[[nodiscard]] std::string to_string(SlaKind kind);

class Sla {
 public:
  /// Maximum-Throughput SLA with an energy budget (joules per measurement
  /// window; the paper uses 2000 J).
  [[nodiscard]] static Sla max_throughput(double energy_budget_j);

  /// Minimum-Energy SLA with a throughput floor (the paper uses 7.5 Gbps).
  [[nodiscard]] static Sla min_energy(double throughput_floor_gbps,
                                      double energy_reference_j);

  /// Energy-Efficiency SLA (unconstrained).
  [[nodiscard]] static Sla energy_efficiency();

  [[nodiscard]] SlaKind kind() const { return kind_; }
  [[nodiscard]] std::string name() const;

  [[nodiscard]] double energy_budget_j() const { return energy_budget_j_; }
  [[nodiscard]] double throughput_floor_gbps() const {
    return throughput_floor_gbps_;
  }

  /// True when a (throughput, energy) measurement honours the constraint.
  [[nodiscard]] bool satisfied(double throughput_gbps,
                               double energy_j) const;

  /// Reward for one measurement window. Gated: zero when the constraint is
  /// violated (paper's choice). Scaled to O(1) for network conditioning.
  [[nodiscard]] double reward(double throughput_gbps, double energy_j) const;

  /// Shaped variant: instead of a hard zero, violations earn a negative
  /// penalty proportional to the violation depth (ablation).
  [[nodiscard]] double shaped_reward(double throughput_gbps,
                                     double energy_j) const;

  /// Energy efficiency λ = T/E as the paper defines it (Eq. 3), in
  /// Gbit per kilojoule-second terms (throughput Gbps / energy KJ).
  [[nodiscard]] static double efficiency(double throughput_gbps,
                                         double energy_j);

 private:
  Sla(SlaKind kind, double energy_budget_j, double throughput_floor_gbps,
      double energy_reference_j);

  SlaKind kind_;
  double energy_budget_j_;
  double throughput_floor_gbps_;
  /// Normalization scale for the MinEnergy reward (a "worst case" energy).
  double energy_reference_j_;
  /// Normalization scale for throughput rewards.
  static constexpr double kThroughputScaleGbps = 10.0;
};

}  // namespace greennfv::core
