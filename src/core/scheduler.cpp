#include "core/scheduler.hpp"

namespace greennfv::core {

BaselineScheduler::BaselineScheduler(const hwmodel::NodeSpec& spec)
    : knobs_(nfvsim::baseline_knobs(spec)) {
  // ONVM's default deployment pins one core per NF; the standard chains
  // carry three NFs, hence three cores per chain burning full poll duty.
  knobs_.cores = 3.0;
}

std::vector<nfvsim::ChainKnobs> BaselineScheduler::decide(
    const std::vector<ChainObservation>& obs,
    const std::vector<nfvsim::ChainKnobs>& current) {
  (void)obs;
  return std::vector<nfvsim::ChainKnobs>(current.size(), knobs_);
}

}  // namespace greennfv::core
