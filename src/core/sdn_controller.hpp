#pragma once

#include <string>
#include <vector>

#include "core/spaces.hpp"
#include "traffic/generator.hpp"

/// \file sdn_controller.hpp
/// The paper's future-work extension (§6): "we plan to incorporate
/// software-defined networking (SDN) and NF controllers to provide higher
/// flexibility. We envision a model where both the SDN controller and NF
/// controller can update each other to perform more effective flow
/// scheduling."
///
/// This module implements that loop's SDN half: a flow-steering controller
/// that watches per-chain load (the same Ω/ξ observations the NF
/// controller feeds its policy) and re-balances flows across chains when
/// the load skew exceeds a threshold. The NF controller keeps tuning knobs
/// per chain; the SDN controller keeps the chains worth tuning.

namespace greennfv::core {

struct SdnConfig {
  /// Rebalance when max/mean chain arrival exceeds this factor.
  double skew_threshold = 1.5;
  /// Minimum windows between rebalances (flow-table churn damping).
  int cooldown_windows = 2;
  /// Largest number of flows moved per rebalance.
  int max_moves_per_rebalance = 1;
};

/// One flow move decision.
struct FlowMove {
  std::size_t flow_index = 0;
  int from_chain = 0;
  int to_chain = 0;
};

class SdnController {
 public:
  explicit SdnController(SdnConfig config = SdnConfig{});

  /// Examines per-chain observations and, if the load skew warrants it,
  /// steers flows from the most- to the least-loaded chain. Applies the
  /// moves to `generator` and returns them (empty when balanced or cooling
  /// down).
  std::vector<FlowMove> rebalance(
      const std::vector<ChainObservation>& obs,
      traffic::TrafficGenerator& generator);

  /// Load skew = max / mean of per-chain arrival rates (1.0 = balanced).
  [[nodiscard]] static double skew(const std::vector<ChainObservation>& obs);

  [[nodiscard]] int rebalances_performed() const { return rebalances_; }
  [[nodiscard]] const SdnConfig& config() const { return config_; }

  void reset();

 private:
  SdnConfig config_;
  int windows_since_move_ = 1 << 20;
  int rebalances_ = 0;
};

}  // namespace greennfv::core
