#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "rl/tensor.hpp"

/// \file mlp.hpp
/// Fully-connected network with manual backprop and an Adam optimizer —
/// the function approximators behind DDPG's actor and critic (the paper's
/// learner is TensorFlow; this is the from-scratch C++ equivalent).
///
/// Design notes:
///   * Forward passes for *inference* are const and allocation-free given a
///     caller-provided Workspace, so Ape-X actors can act concurrently on
///     shared parameter snapshots.
///   * Gradients are accumulated into an external Gradients struct, so a
///     minibatch is N backward passes + one optimizer step.

namespace greennfv::rl {

enum class Activation { kLinear, kRelu, kTanh, kSigmoid };

[[nodiscard]] std::string to_string(Activation act);

struct LayerSpec {
  std::size_t units = 0;
  Activation activation = Activation::kRelu;
};

class Mlp {
 public:
  /// Per-layer weight gradients mirroring the network's shape.
  struct Gradients {
    std::vector<Matrix> dw;
    std::vector<std::vector<double>> db;
    void zero();
    /// grads += other (used to merge per-sample gradients).
    void add(const Gradients& other);
    /// grads *= s (minibatch averaging).
    void scale(double s);
  };

  /// Per-layer activations captured during a forward pass for backprop.
  struct Workspace {
    std::vector<std::vector<double>> pre;   ///< pre-activation z = Wx+b
    std::vector<std::vector<double>> post;  ///< post-activation a = f(z)
    std::vector<double> input;
  };

  /// Minibatch-granularity workspace: one row per sample. `input` doubles
  /// as the staging buffer — callers gather sampled transitions straight
  /// into it, then run forward_batch/backward_batch. All matrices are
  /// resized on first use and reused thereafter, so the batched hot path
  /// performs zero allocations once shapes stabilize.
  struct BatchWorkspace {
    Matrix input;               ///< batch × input_dim
    std::vector<Matrix> pre;    ///< batch × units[l]
    std::vector<Matrix> post;   ///< batch × units[l]
    std::vector<Matrix> delta;  ///< backward scratch, batch × units[l]
    Matrix dx;                  ///< batch × input_dim (dL/dX)
  };

  /// Builds the network. Hidden layers get Xavier init; the output layer
  /// gets small-uniform init (DDPG convention, |w| <= 3e-3).
  Mlp(std::size_t input_dim, const std::vector<LayerSpec>& layers, Rng& rng);

  [[nodiscard]] std::size_t input_dim() const { return input_dim_; }
  [[nodiscard]] std::size_t output_dim() const;
  [[nodiscard]] std::size_t num_layers() const { return weights_.size(); }
  [[nodiscard]] std::size_t num_parameters() const;

  /// Inference forward pass (allocates a scratch workspace internally).
  [[nodiscard]] std::vector<double> forward(
      std::span<const double> input) const;

  /// Training forward pass; fills `ws` for use by backward().
  std::vector<double> forward(std::span<const double> input,
                              Workspace& ws) const;

  /// Allocation-free inference: runs the forward pass through `ws` and
  /// writes the output into `out` (size output_dim()). After the first
  /// call with a given workspace no memory is touched — this is the
  /// per-env-step rollout path for trainers, schedulers, and Ape-X actors.
  void forward_into(std::span<const double> input, Workspace& ws,
                    std::span<double> out) const;

  /// Batched training forward over ws.input (batch × input_dim), recording
  /// per-layer activations in `ws`. Returns the output activations
  /// (batch × output_dim) — a reference into `ws`, valid until the next
  /// forward_batch on the same workspace.
  const Matrix& forward_batch(BatchWorkspace& ws) const;

  /// Convenience overload: copies `x` into ws.input first.
  const Matrix& forward_batch(const Matrix& x, BatchWorkspace& ws) const;

  /// Backpropagates dL/d(output) through the pass recorded in `ws`,
  /// accumulating parameter gradients into `grads` and returning
  /// dL/d(input) — needed by DDPG's actor update, which chains the critic's
  /// input gradient into the actor.
  std::vector<double> backward(std::span<const double> output_grad,
                               const Workspace& ws, Gradients& grads) const;

  /// Batched backprop of dY (batch × output_dim) through the pass recorded
  /// in `ws`, overwriting `grads` with the minibatch-summed parameter
  /// gradients (no pre-zeroing needed — each element's sum starts at 0 and
  /// accumulates the batch in order, exactly as zeroed-then-accumulated
  /// per-sample backward() calls would). Returns dL/dX (batch ×
  /// input_dim) — a reference to ws.dx. Gradient buffers and workspace
  /// scratch persist across steps: zero steady-state allocations.
  const Matrix& backward_batch(const Matrix& output_grad, BatchWorkspace& ws,
                               Gradients& grads) const;

  [[nodiscard]] Gradients make_gradients() const;

  /// Flat parameter vector (weights then biases, layer by layer).
  [[nodiscard]] std::vector<double> parameters() const;
  void set_parameters(std::span<const double> params);

  /// θ ← τ·θ_src + (1-τ)·θ  (the DDPG target-network soft update,
  /// Algorithm 2 lines 9-10).
  void soft_update_from(const Mlp& src, double tau);

  /// θ ← θ_src (hard sync; Ape-X actors pulling learner parameters).
  void copy_from(const Mlp& src);

  /// In-place SGD-free Adam step (optimizer state lives in AdamOptimizer).
  friend class AdamOptimizer;

 private:
  std::size_t input_dim_;
  std::vector<Matrix> weights_;
  std::vector<std::vector<double>> biases_;
  std::vector<Activation> activations_;

  static void apply_activation(Activation act, std::span<double> v);
  static double activation_grad(Activation act, double pre, double post);
  /// Runs the forward pass into `ws` without materializing a return value.
  /// `fast` selects the ILP-friendly matvec4 kernel (bit-identical output);
  /// the reference training path keeps the plain kernel it is benchmarked
  /// against.
  void run_forward(std::span<const double> input, Workspace& ws,
                   bool fast) const;
};

/// Adam (Kingma & Ba) with per-parameter first/second moments.
class AdamOptimizer {
 public:
  AdamOptimizer(const Mlp& model, double lr, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8);

  /// Applies one update of `grads` (assumed already minibatch-averaged,
  /// gradient-descent direction) to `model`.
  void step(Mlp& model, const Mlp::Gradients& grads);

  [[nodiscard]] double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }
  [[nodiscard]] std::int64_t steps_taken() const { return t_; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::int64_t t_ = 0;
  std::vector<Matrix> m_w_, v_w_;
  std::vector<std::vector<double>> m_b_, v_b_;
};

}  // namespace greennfv::rl
