#pragma once

#include <memory>
#include <span>
#include <vector>

#include "rl/mlp.hpp"
#include "rl/noise.hpp"
#include "rl/replay.hpp"

/// \file ddpg.hpp
/// Deep Deterministic Policy Gradient (Lillicrap et al., ICLR'16) — the
/// paper's Algorithm 2. Actor μ_θ maps states to continuous actions in
/// [-1,1]^d (tanh head); critic Q_θ scores (state, action) pairs. Target
/// copies of both are soft-updated with rate τ. The critic minimizes the
/// TD error against y = r + γ·Q'(x', μ'(x')); the actor ascends
/// ∇_a Q(x, a)|a=μ(x) chained through its own Jacobian (Eq. 6).

namespace greennfv::rl {

struct DdpgConfig {
  std::size_t state_dim = 0;
  std::size_t action_dim = 0;
  std::vector<std::size_t> actor_hidden = {64, 64};
  std::vector<std::size_t> critic_hidden = {64, 64};
  double actor_lr = 1e-4;
  double critic_lr = 1e-3;
  double gamma = 0.99;   ///< discount factor
  double tau = 5e-3;     ///< target soft-update rate (Algorithm 2, l.9-10)
  std::size_t batch_size = 64;
  /// Clip each sample's critic gradient contribution ("clipping rewards"
  /// stabilizer from the DQN lineage, applied to TD errors here).
  double td_error_clip = 10.0;
};

/// Diagnostics from one train step; `td_errors` feed PER priorities.
struct TrainStats {
  double critic_loss = 0.0;
  double actor_objective = 0.0;  ///< mean Q(x, μ(x)) before the update
  std::vector<double> td_errors;
  std::vector<std::uint64_t> indices;
};

class DdpgAgent {
 public:
  /// Inference scratch owned by the caller: one per rollout thread, so
  /// concurrent Ape-X actors and schedulers each act allocation-free
  /// against const agents without sharing mutable state.
  struct ActScratch {
    Mlp::Workspace ws;
    std::vector<double> noise;
  };

  DdpgAgent(DdpgConfig config, std::uint64_t seed);

  /// Deterministic policy μ(x) in [-1,1]^action_dim.
  [[nodiscard]] std::vector<double> act(std::span<const double> state) const;

  /// Allocation-free μ(x): writes the action into `action` (size
  /// action_dim) through caller-owned scratch — the per-env-step path.
  void act_into(std::span<const double> state, ActScratch& scratch,
                std::span<double> action) const;

  /// Behaviour policy: μ(x) + noise, clamped to [-1,1].
  [[nodiscard]] std::vector<double> act_noisy(std::span<const double> state,
                                              NoiseProcess& noise, Rng& rng)
      const;

  /// Allocation-free behaviour policy (act_into + noise, clamped).
  void act_noisy_into(std::span<const double> state, NoiseProcess& noise,
                      Rng& rng, ActScratch& scratch,
                      std::span<double> action) const;

  /// Critic value Q(x, a).
  [[nodiscard]] double q_value(std::span<const double> state,
                               std::span<const double> action) const;

  /// One minibatch update from `replay` (critic + actor + target sync),
  /// executed as four batched GEMM passes (target-actor, target-critic,
  /// critic fwd+bwd, actor fwd+bwd chained through the critic's ∂Q/∂a
  /// slice) over transitions gathered straight into reusable batch
  /// matrices — zero allocations after the first call. Returns stats incl.
  /// per-sample TD errors (a reference to persistent storage, valid until
  /// the next train step), which the caller pushes back into prioritized
  /// replay.
  const TrainStats& train_step(ReplayInterface& replay, Rng& rng);

  /// The original per-sample implementation (6·N matvec passes per
  /// minibatch). Numerically equivalent to train_step — kept as the
  /// reference the batched-equivalence suite and bench_train compare
  /// against; not a hot path.
  TrainStats train_step_reference(ReplayInterface& replay, Rng& rng);

  [[nodiscard]] const DdpgConfig& config() const { return config_; }
  [[nodiscard]] const Mlp& actor() const { return actor_; }
  [[nodiscard]] const Mlp& critic() const { return critic_; }

  /// Parameter transfer for Ape-X actor sync.
  [[nodiscard]] std::vector<double> actor_parameters() const;
  void set_actor_parameters(std::span<const double> params);

  /// Persists the deterministic policy to disk / restores it. The restore
  /// validates network dimensions against this agent's configuration.
  void save_actor(const std::string& path) const;
  void load_actor(const std::string& path);

  [[nodiscard]] std::int64_t train_steps() const { return train_steps_; }

  /// Multiplies both optimizers' learning rates (annealing for late-stage
  /// fine-tuning; DDPG is prone to late-training policy drift otherwise).
  void scale_learning_rates(double factor);

 private:
  DdpgConfig config_;
  Rng init_rng_;
  Mlp actor_;
  Mlp critic_;
  Mlp target_actor_;
  Mlp target_critic_;
  AdamOptimizer actor_opt_;
  AdamOptimizer critic_opt_;
  std::int64_t train_steps_ = 0;

  // --- batched-training scratch (persists across steps) --------------------
  // Resized on the first train_step and reused thereafter: the training
  // hot loop performs no heap allocations at steady state.
  Minibatch batch_;
  TrainStats stats_;
  Mlp::BatchWorkspace target_actor_ws_;
  Mlp::BatchWorkspace target_critic_ws_;
  Mlp::BatchWorkspace critic_ws_;       ///< critic fwd/bwd on replay actions
  Mlp::BatchWorkspace critic_pol_ws_;   ///< critic fwd/bwd on policy actions
  Mlp::BatchWorkspace actor_ws_;
  Mlp::Gradients critic_grads_;
  Mlp::Gradients actor_grads_;
  Mlp::Gradients critic_scratch_;       ///< discarded ∂Q/∂θ of the actor pass
  std::vector<double> y_;               ///< TD targets
  Matrix dq_;                           ///< batch×1 critic loss gradient
  Matrix ones_;                         ///< batch×1, dQ seed for ∂Q/∂a
  Matrix dq_da_;                        ///< batch×action_dim actor seed

  [[nodiscard]] static Mlp build_actor(const DdpgConfig& config, Rng& rng);
  [[nodiscard]] static Mlp build_critic(const DdpgConfig& config, Rng& rng);
  [[nodiscard]] std::vector<double> critic_input(
      std::span<const double> state, std::span<const double> action) const;
  void ensure_train_scratch(std::size_t n);
};

}  // namespace greennfv::rl
