#pragma once

#include <memory>
#include <span>
#include <vector>

#include "rl/mlp.hpp"
#include "rl/noise.hpp"
#include "rl/replay.hpp"

/// \file ddpg.hpp
/// Deep Deterministic Policy Gradient (Lillicrap et al., ICLR'16) — the
/// paper's Algorithm 2. Actor μ_θ maps states to continuous actions in
/// [-1,1]^d (tanh head); critic Q_θ scores (state, action) pairs. Target
/// copies of both are soft-updated with rate τ. The critic minimizes the
/// TD error against y = r + γ·Q'(x', μ'(x')); the actor ascends
/// ∇_a Q(x, a)|a=μ(x) chained through its own Jacobian (Eq. 6).

namespace greennfv::rl {

struct DdpgConfig {
  std::size_t state_dim = 0;
  std::size_t action_dim = 0;
  std::vector<std::size_t> actor_hidden = {64, 64};
  std::vector<std::size_t> critic_hidden = {64, 64};
  double actor_lr = 1e-4;
  double critic_lr = 1e-3;
  double gamma = 0.99;   ///< discount factor
  double tau = 5e-3;     ///< target soft-update rate (Algorithm 2, l.9-10)
  std::size_t batch_size = 64;
  /// Clip each sample's critic gradient contribution ("clipping rewards"
  /// stabilizer from the DQN lineage, applied to TD errors here).
  double td_error_clip = 10.0;
};

/// Diagnostics from one train step; `td_errors` feed PER priorities.
struct TrainStats {
  double critic_loss = 0.0;
  double actor_objective = 0.0;  ///< mean Q(x, μ(x)) before the update
  std::vector<double> td_errors;
  std::vector<std::uint64_t> indices;
};

class DdpgAgent {
 public:
  DdpgAgent(DdpgConfig config, std::uint64_t seed);

  /// Deterministic policy μ(x) in [-1,1]^action_dim.
  [[nodiscard]] std::vector<double> act(std::span<const double> state) const;

  /// Behaviour policy: μ(x) + noise, clamped to [-1,1].
  [[nodiscard]] std::vector<double> act_noisy(std::span<const double> state,
                                              NoiseProcess& noise, Rng& rng)
      const;

  /// Critic value Q(x, a).
  [[nodiscard]] double q_value(std::span<const double> state,
                               std::span<const double> action) const;

  /// One minibatch update from `replay` (critic + actor + target sync).
  /// Returns stats incl. per-sample TD errors, which the caller pushes
  /// back into prioritized replay.
  TrainStats train_step(ReplayInterface& replay, Rng& rng);

  [[nodiscard]] const DdpgConfig& config() const { return config_; }
  [[nodiscard]] const Mlp& actor() const { return actor_; }
  [[nodiscard]] const Mlp& critic() const { return critic_; }

  /// Parameter transfer for Ape-X actor sync.
  [[nodiscard]] std::vector<double> actor_parameters() const;
  void set_actor_parameters(std::span<const double> params);

  /// Persists the deterministic policy to disk / restores it. The restore
  /// validates network dimensions against this agent's configuration.
  void save_actor(const std::string& path) const;
  void load_actor(const std::string& path);

  [[nodiscard]] std::int64_t train_steps() const { return train_steps_; }

  /// Multiplies both optimizers' learning rates (annealing for late-stage
  /// fine-tuning; DDPG is prone to late-training policy drift otherwise).
  void scale_learning_rates(double factor);

 private:
  DdpgConfig config_;
  Rng init_rng_;
  Mlp actor_;
  Mlp critic_;
  Mlp target_actor_;
  Mlp target_critic_;
  AdamOptimizer actor_opt_;
  AdamOptimizer critic_opt_;
  std::int64_t train_steps_ = 0;

  [[nodiscard]] static Mlp build_actor(const DdpgConfig& config, Rng& rng);
  [[nodiscard]] static Mlp build_critic(const DdpgConfig& config, Rng& rng);
  [[nodiscard]] std::vector<double> critic_input(
      std::span<const double> state, std::span<const double> action) const;
};

}  // namespace greennfv::rl
