#include "rl/per.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "telemetry/metrics.hpp"

namespace greennfv::rl {

SumTree::SumTree(std::size_t capacity) : capacity_(capacity) {
  GNFV_REQUIRE(capacity >= 1, "SumTree: capacity must be >= 1");
  base_ = 1;
  while (base_ < capacity) base_ <<= 1;
  nodes_.assign(2 * base_, 0.0);
}

void SumTree::set(std::size_t index, double priority) {
  GNFV_REQUIRE(index < capacity_, "SumTree::set: index out of range");
  GNFV_REQUIRE(priority >= 0.0, "SumTree::set: negative priority");
  std::size_t node = base_ + index;
  const double delta = priority - nodes_[node];
  while (node >= 1) {
    nodes_[node] += delta;
    node >>= 1;
  }
}

double SumTree::get(std::size_t index) const {
  GNFV_REQUIRE(index < capacity_, "SumTree::get: index out of range");
  return nodes_[base_ + index];
}

double SumTree::total() const { return nodes_[1]; }

std::size_t SumTree::find_prefix(double mass) const {
  GNFV_REQUIRE(total() > 0.0, "SumTree::find_prefix: empty tree");
  mass = std::clamp(mass, 0.0, total() * (1.0 - 1e-12));
  std::size_t node = 1;
  while (node < base_) {
    const std::size_t left = 2 * node;
    if (mass < nodes_[left]) {
      node = left;
    } else {
      mass -= nodes_[left];
      node = left + 1;
    }
  }
  const std::size_t leaf = node - base_;
  // Numerical slack may land on a zero-priority leaf past the end; clamp.
  return std::min(leaf, capacity_ - 1);
}

PrioritizedReplay::PrioritizedReplay(PerConfig config)
    : config_(config),
      tree_(config.capacity),
      max_seen_priority_(config.max_priority) {
  GNFV_REQUIRE(config.alpha >= 0.0, "PER: alpha must be >= 0");
  GNFV_REQUIRE(config.epsilon > 0.0, "PER: epsilon must be > 0");
  storage_.reserve(config.capacity);
}

void PrioritizedReplay::add(Transition t, double priority) {
  std::lock_guard<std::mutex> lock(mutex_);
  // New experiences default to the max seen priority so everything is
  // sampled at least once (Schaul et al. §3.3).
  const double p = priority > 0.0 ? priority : max_seen_priority_;
  const double leaf = std::pow(p + config_.epsilon, config_.alpha);
  if (storage_.size() < config_.capacity) {
    storage_.push_back(std::move(t));
    tree_.set(storage_.size() - 1, leaf);
  } else {
    storage_[next_] = std::move(t);
    tree_.set(next_, leaf);
    full_ = true;
  }
  next_ = (next_ + 1) % config_.capacity;
}

void PrioritizedReplay::sample_into(std::size_t n, Rng& rng,
                                    Minibatch& out) {
  static auto& c_samples = telemetry::metrics::counter("rl.replay_samples");
  c_samples.add(n);
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t current = size_locked();
  GNFV_REQUIRE(current >= n && n > 0, "PER::sample: not enough data");
  out.reset(n);

  const double beta = current_beta();
  ++sample_steps_;

  const double total = tree_.total();
  GNFV_REQUIRE(total > 0.0, "PER::sample: all priorities zero");
  // Stratified sampling: one draw per equal-mass segment.
  const double segment = total / static_cast<double>(n);
  double max_weight = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double mass =
        segment * (static_cast<double>(i) + rng.uniform());
    const std::size_t idx = tree_.find_prefix(mass);
    const double p = tree_.get(idx) / total;
    const double weight =
        std::pow(static_cast<double>(current) * std::max(p, 1e-12), -beta);
    out.assign(i, storage_[idx]);
    out.indices.push_back(idx);
    out.weights.push_back(weight);
    max_weight = std::max(max_weight, weight);
  }
  // Normalize by max weight so IS correction only scales updates down.
  if (max_weight > 0.0) {
    for (double& w : out.weights) w /= max_weight;
  }
}

void PrioritizedReplay::update_priorities(
    const std::vector<std::uint64_t>& indices,
    const std::vector<double>& priorities) {
  GNFV_REQUIRE(indices.size() == priorities.size(),
               "PER::update_priorities: size mismatch");
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const double p = std::fabs(priorities[i]);
    max_seen_priority_ = std::max(max_seen_priority_, p);
    tree_.set(static_cast<std::size_t>(indices[i]),
              std::pow(p + config_.epsilon, config_.alpha));
  }
}

std::size_t PrioritizedReplay::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_locked();
}

std::size_t PrioritizedReplay::size_locked() const {
  return full_ ? config_.capacity : storage_.size();
}

std::size_t PrioritizedReplay::capacity() const { return config_.capacity; }

void PrioritizedReplay::decay_oldest(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t current = size_locked();
  if (current == 0) return;
  n = std::min(n, current);
  // Oldest entries sit right after the write cursor once the buffer wraps.
  std::size_t oldest = full_ ? next_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    tree_.set(oldest, 0.0);
    oldest = (oldest + 1) % config_.capacity;
  }
}

double PrioritizedReplay::current_beta() const {
  if (config_.beta_anneal_steps <= 0) return config_.beta_final;
  const double frac = std::min(
      1.0, static_cast<double>(sample_steps_) /
               static_cast<double>(config_.beta_anneal_steps));
  return config_.beta + (config_.beta_final - config_.beta) * frac;
}

}  // namespace greennfv::rl
