#include "rl/qlearning.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math_util.hpp"

namespace greennfv::rl {

Discretizer::Discretizer(std::size_t dim, int levels)
    : dim_(dim), levels_(levels) {
  GNFV_REQUIRE(dim >= 1, "Discretizer: zero dim");
  GNFV_REQUIRE(levels >= 2, "Discretizer: need >= 2 levels");
  num_cells_ = 1;
  for (std::size_t d = 0; d < dim; ++d) {
    GNFV_REQUIRE(num_cells_ < (1ull << 58), "Discretizer: cell count overflow");
    num_cells_ *= static_cast<std::uint64_t>(levels);
  }
}

std::uint64_t Discretizer::encode(std::span<const double> point) const {
  GNFV_REQUIRE(point.size() == dim_, "Discretizer::encode: dim mismatch");
  std::uint64_t cell = 0;
  for (std::size_t d = 0; d < dim_; ++d) {
    const double unit =
        math_util::clamp((point[d] + 1.0) / 2.0, 0.0, 1.0 - 1e-12);
    const auto bin = static_cast<std::uint64_t>(unit * levels_);
    cell = cell * static_cast<std::uint64_t>(levels_) + bin;
  }
  return cell;
}

std::vector<double> Discretizer::decode(std::uint64_t cell) const {
  GNFV_REQUIRE(cell < num_cells_, "Discretizer::decode: cell out of range");
  std::vector<double> point(dim_);
  for (std::size_t d = dim_; d-- > 0;) {
    const auto bin = cell % static_cast<std::uint64_t>(levels_);
    cell /= static_cast<std::uint64_t>(levels_);
    // Cell center in [-1,1].
    point[d] = -1.0 + 2.0 * (static_cast<double>(bin) + 0.5) /
                          static_cast<double>(levels_);
  }
  return point;
}

QLearningAgent::QLearningAgent(QLearningConfig config, std::uint64_t seed)
    : config_(config),
      state_disc_(config.state_dim, config.state_levels),
      action_disc_(config.action_dim, config.action_levels),
      epsilon_(config.epsilon),
      rng_(seed) {
  GNFV_REQUIRE(config.alpha > 0.0 && config.alpha <= 1.0,
               "QLearning: alpha out of range");
  GNFV_REQUIRE(action_disc_.num_cells() <= (1ull << 24),
               "QLearning: action table too large to enumerate");
}

std::vector<double>& QLearningAgent::q_row(std::uint64_t state_cell) {
  auto it = table_.find(state_cell);
  if (it == table_.end()) {
    it = table_
             .emplace(state_cell,
                      std::vector<double>(action_disc_.num_cells(), 0.0))
             .first;
  }
  return it->second;
}

std::uint64_t QLearningAgent::best_action(
    const std::vector<double>& row) const {
  const auto it = std::max_element(row.begin(), row.end());
  return static_cast<std::uint64_t>(it - row.begin());
}

std::vector<double> QLearningAgent::act(std::span<const double> state) {
  const std::uint64_t cell = state_disc_.encode(state);
  if (rng_.bernoulli(epsilon_)) {
    return action_disc_.decode(rng_.uniform_u64(action_disc_.num_cells()));
  }
  return action_disc_.decode(best_action(q_row(cell)));
}

std::vector<double> QLearningAgent::act_greedy(
    std::span<const double> state) const {
  const std::uint64_t cell = state_disc_.encode(state);
  const auto it = table_.find(cell);
  if (it == table_.end()) {
    // Unvisited state: the table has no opinion; mid-range action.
    return std::vector<double>(config_.action_dim, 0.0);
  }
  return action_disc_.decode(best_action(it->second));
}

void QLearningAgent::update(std::span<const double> state,
                            std::span<const double> action, double reward,
                            std::span<const double> next_state, bool done) {
  const std::uint64_t s = state_disc_.encode(state);
  const std::uint64_t a = action_disc_.encode(action);
  double target = reward;
  if (!done) {
    const auto& next_row = q_row(state_disc_.encode(next_state));
    target += config_.gamma * next_row[best_action(next_row)];
  }
  auto& row = q_row(s);
  row[a] += config_.alpha * (target - row[a]);
  epsilon_ = std::max(config_.epsilon_min, epsilon_ * config_.epsilon_decay);
}

}  // namespace greennfv::rl
