#include "rl/ddpg.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math_util.hpp"
#include "rl/checkpoint.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace greennfv::rl {

Mlp DdpgAgent::build_actor(const DdpgConfig& config, Rng& rng) {
  std::vector<LayerSpec> layers;
  for (const std::size_t units : config.actor_hidden)
    layers.push_back({units, Activation::kRelu});
  layers.push_back({config.action_dim, Activation::kTanh});
  return Mlp(config.state_dim, layers, rng);
}

Mlp DdpgAgent::build_critic(const DdpgConfig& config, Rng& rng) {
  std::vector<LayerSpec> layers;
  for (const std::size_t units : config.critic_hidden)
    layers.push_back({units, Activation::kRelu});
  layers.push_back({1, Activation::kLinear});
  return Mlp(config.state_dim + config.action_dim, layers, rng);
}

namespace {

/// Validates before any network is constructed so errors carry DDPG
/// context rather than an MLP-internal message.
const DdpgConfig& validated(const DdpgConfig& config) {
  GNFV_REQUIRE(config.state_dim > 0, "DDPG: zero state dim");
  GNFV_REQUIRE(config.action_dim > 0, "DDPG: zero action dim");
  GNFV_REQUIRE(config.gamma > 0.0 && config.gamma <= 1.0,
               "DDPG: gamma out of (0,1]");
  GNFV_REQUIRE(config.tau > 0.0 && config.tau <= 1.0,
               "DDPG: tau out of (0,1]");
  GNFV_REQUIRE(config.batch_size >= 1, "DDPG: zero batch size");
  return config;
}

}  // namespace

DdpgAgent::DdpgAgent(DdpgConfig config, std::uint64_t seed)
    : config_(validated(config)),
      init_rng_(seed),
      actor_(build_actor(config_, init_rng_)),
      critic_(build_critic(config_, init_rng_)),
      target_actor_(build_actor(config_, init_rng_)),
      target_critic_(build_critic(config_, init_rng_)),
      actor_opt_(actor_, config_.actor_lr),
      critic_opt_(critic_, config_.critic_lr) {
  // Targets start as exact copies (Algorithm 2 initialization).
  target_actor_.copy_from(actor_);
  target_critic_.copy_from(critic_);
  critic_grads_ = critic_.make_gradients();
  actor_grads_ = actor_.make_gradients();
  critic_scratch_ = critic_.make_gradients();
}

std::vector<double> DdpgAgent::act(std::span<const double> state) const {
  return actor_.forward(state);
}

void DdpgAgent::act_into(std::span<const double> state, ActScratch& scratch,
                         std::span<double> action) const {
  actor_.forward_into(state, scratch.ws, action);
}

std::vector<double> DdpgAgent::act_noisy(std::span<const double> state,
                                         NoiseProcess& noise,
                                         Rng& rng) const {
  std::vector<double> action(config_.action_dim);
  ActScratch scratch;
  act_noisy_into(state, noise, rng, scratch, action);
  return action;
}

void DdpgAgent::act_noisy_into(std::span<const double> state,
                               NoiseProcess& noise, Rng& rng,
                               ActScratch& scratch,
                               std::span<double> action) const {
  act_into(state, scratch, action);
  GNFV_ASSERT(noise.dim() == action.size(), "noise dimension mismatch");
  scratch.noise.resize(noise.dim());
  noise.sample_into(rng, scratch.noise);
  for (std::size_t i = 0; i < action.size(); ++i) {
    action[i] = math_util::clamp(action[i] + scratch.noise[i], -1.0, 1.0);
  }
}

std::vector<double> DdpgAgent::critic_input(
    std::span<const double> state, std::span<const double> action) const {
  std::vector<double> input;
  input.reserve(state.size() + action.size());
  input.insert(input.end(), state.begin(), state.end());
  input.insert(input.end(), action.begin(), action.end());
  return input;
}

double DdpgAgent::q_value(std::span<const double> state,
                          std::span<const double> action) const {
  return critic_.forward(critic_input(state, action))[0];
}

void DdpgAgent::ensure_train_scratch(std::size_t n) {
  const std::size_t s = config_.state_dim;
  const std::size_t a = config_.action_dim;
  actor_ws_.input.resize(n, s);
  target_actor_ws_.input.resize(n, s);
  critic_ws_.input.resize(n, s + a);
  critic_pol_ws_.input.resize(n, s + a);
  target_critic_ws_.input.resize(n, s + a);
  y_.resize(n);
  dq_.resize(n, 1);
  dq_da_.resize(n, a);
  if (ones_.rows() != n) {
    ones_.resize(n, 1);
    ones_.fill(1.0);
  }
}

const TrainStats& DdpgAgent::train_step(ReplayInterface& replay, Rng& rng) {
  namespace mc = telemetry::metrics;
  static auto& c_steps = mc::counter("rl.train_steps");
  static auto& t_step = mc::counter("rl.phase.train_step_ns");
  static auto& t_targets = mc::counter("rl.phase.targets_ns");
  static auto& t_critic = mc::counter("rl.phase.critic_ns");
  static auto& t_actor = mc::counter("rl.phase.actor_ns");
  static auto& t_soft = mc::counter("rl.phase.soft_update_ns");
  c_steps.add();
  // Explicit Spans (not the macro) so the pass timers keep accumulating
  // when the tracer is compiled out.
  const telemetry::trace::Span step_span("rl/train_step", &t_step);
  GNFV_REQUIRE(replay.size() >= config_.batch_size,
               "DDPG::train_step: replay underfilled");
  replay.sample_into(config_.batch_size, rng, batch_);
  const std::size_t n = batch_.size();
  const double inv_n = 1.0 / static_cast<double>(n);
  const std::size_t s = config_.state_dim;
  const std::size_t a = config_.action_dim;
  ensure_train_scratch(n);

  stats_.td_errors.clear();
  stats_.indices.assign(batch_.indices.begin(), batch_.indices.end());

  // --- gather transitions straight into the batch matrices ------------------
  for (std::size_t i = 0; i < n; ++i) {
    const Transition& t = batch_.transitions[i];
    GNFV_ASSERT(t.state.size() == s && t.action.size() == a &&
                    t.next_state.size() == s,
                "train_step: transition dims disagree with config");
    double* xs = actor_ws_.input.data() + i * s;
    double* xn = target_actor_ws_.input.data() + i * s;
    double* ci = critic_ws_.input.data() + i * (s + a);
    for (std::size_t d = 0; d < s; ++d) {
      xs[d] = t.state[d];
      xn[d] = t.next_state[d];
      ci[d] = t.state[d];
    }
    for (std::size_t d = 0; d < a; ++d) ci[s + d] = t.action[d];
  }

  // --- passes 1+2: targets give y = r + γ·Q'(x', μ'(x')) --------------------
  // (Algorithm 2 line 5; done rows keep y = r, exactly the reference's
  // zero bootstrap at terminal.)
  {
    const telemetry::trace::Span targets_span("rl/targets", &t_targets);
    const Matrix& next_actions =
        target_actor_.forward_batch(target_actor_ws_);
    for (std::size_t i = 0; i < n; ++i) {
      double* tc = target_critic_ws_.input.data() + i * (s + a);
      const double* xn = target_actor_ws_.input.data() + i * s;
      const double* na = next_actions.data() + i * a;
      for (std::size_t d = 0; d < s; ++d) tc[d] = xn[d];
      for (std::size_t d = 0; d < a; ++d) tc[s + d] = na[d];
    }
    const Matrix& next_q = target_critic_.forward_batch(target_critic_ws_);
    for (std::size_t i = 0; i < n; ++i) {
      double y = batch_.transitions[i].reward;
      if (!batch_.transitions[i].done) y += config_.gamma * next_q(i, 0);
      y_[i] = y;
    }
  }

  // --- pass 3: critic fwd+bwd (Algorithm 2 lines 4-6) -----------------------
  {
    const telemetry::trace::Span critic_span("rl/critic_update", &t_critic);
    const Matrix& q = critic_.forward_batch(critic_ws_);
    double critic_loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double td = q(i, 0) - y_[i];
      critic_loss += td * td;
      td =
          math_util::clamp(td, -config_.td_error_clip, config_.td_error_clip);
      stats_.td_errors.push_back(std::fabs(td));
      // dL/dq for 0.5·w·td² (importance weight from PER).
      dq_(i, 0) = td * batch_.weights[i] * inv_n;
    }
    stats_.critic_loss = critic_loss * inv_n;
    (void)critic_.backward_batch(dq_, critic_ws_, critic_grads_);
    critic_opt_.step(critic_, critic_grads_);
  }

  // --- pass 4: actor fwd+bwd via the critic's ∂Q/∂a slice (lines 7-8) -------
  {
    const telemetry::trace::Span actor_span("rl/actor_update", &t_actor);
    const Matrix& policy_actions = actor_.forward_batch(actor_ws_);
    for (std::size_t i = 0; i < n; ++i) {
      double* ci = critic_pol_ws_.input.data() + i * (s + a);
      const double* xs = actor_ws_.input.data() + i * s;
      const double* pa = policy_actions.data() + i * a;
      for (std::size_t d = 0; d < s; ++d) ci[d] = xs[d];
      for (std::size_t d = 0; d < a; ++d) ci[s + d] = pa[d];
    }
    const Matrix& q_policy = critic_.forward_batch(critic_pol_ws_);
    double objective = 0.0;
    for (std::size_t i = 0; i < n; ++i) objective += q_policy(i, 0);
    stats_.actor_objective = objective * inv_n;
    const Matrix& input_grad =
        critic_.backward_batch(ones_, critic_pol_ws_, critic_scratch_);
    // Gradient *ascent* on Q -> descend on -Q.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t d = 0; d < a; ++d)
        dq_da_(i, d) = -input_grad(i, s + d) * inv_n;
    (void)actor_.backward_batch(dq_da_, actor_ws_, actor_grads_);
    actor_opt_.step(actor_, actor_grads_);
  }

  // --- target soft updates (Algorithm 2 lines 9-10) -------------------------
  {
    const telemetry::trace::Span soft_span("rl/soft_update", &t_soft);
    target_critic_.soft_update_from(critic_, config_.tau);
    target_actor_.soft_update_from(actor_, config_.tau);
  }

  ++train_steps_;
  return stats_;
}

TrainStats DdpgAgent::train_step_reference(ReplayInterface& replay,
                                           Rng& rng) {
  GNFV_REQUIRE(replay.size() >= config_.batch_size,
               "DDPG::train_step: replay underfilled");
  const Minibatch batch = replay.sample(config_.batch_size, rng);
  const auto n = batch.size();
  const double inv_n = 1.0 / static_cast<double>(n);

  TrainStats stats;
  stats.td_errors.reserve(n);
  stats.indices = batch.indices;

  // --- critic update (Algorithm 2 lines 4-6) -------------------------------
  Mlp::Gradients critic_grads = critic_.make_gradients();
  critic_grads.zero();
  Mlp::Workspace ws;
  for (std::size_t i = 0; i < n; ++i) {
    const Transition& t = batch.transitions[i];
    // y_i = r_i + γ·Q'(x_{i+1}, μ'(x_{i+1}))  (zero bootstrap at terminal)
    double y = t.reward;
    if (!t.done) {
      const std::vector<double> next_action =
          target_actor_.forward(t.next_state);
      const double next_q =
          target_critic_.forward(critic_input(t.next_state, next_action))[0];
      y += config_.gamma * next_q;
    }
    const std::vector<double> input = critic_input(t.state, t.action);
    const double q = critic_.forward(input, ws)[0];
    double td = q - y;
    stats.critic_loss += td * td;
    td = math_util::clamp(td, -config_.td_error_clip, config_.td_error_clip);
    stats.td_errors.push_back(std::fabs(td));
    // dL/dq for 0.5·w·td² (importance weight from PER).
    const double dq = td * batch.weights[i] * inv_n;
    const double grad[1] = {dq};
    (void)critic_.backward(std::span<const double>(grad, 1), ws,
                           critic_grads);
  }
  stats.critic_loss *= inv_n;
  critic_opt_.step(critic_, critic_grads);

  // --- actor update (Algorithm 2 lines 7-8, Eq. 6) --------------------------
  Mlp::Gradients actor_grads = actor_.make_gradients();
  actor_grads.zero();
  Mlp::Workspace actor_ws;
  Mlp::Workspace critic_ws;
  Mlp::Gradients critic_scratch = critic_.make_gradients();  // discarded
  for (std::size_t i = 0; i < n; ++i) {
    const Transition& t = batch.transitions[i];
    const std::vector<double> action = actor_.forward(t.state, actor_ws);
    const std::vector<double> input = critic_input(t.state, action);
    const double q = critic_.forward(input, critic_ws)[0];
    stats.actor_objective += q;
    // ∇_a Q: backprop 1.0 through the critic, slice the action block.
    critic_scratch.zero();
    const double one[1] = {1.0};
    const std::vector<double> input_grad = critic_.backward(
        std::span<const double>(one, 1), critic_ws, critic_scratch);
    // Gradient *ascent* on Q -> descend on -Q.
    std::vector<double> dq_da(config_.action_dim);
    for (std::size_t d = 0; d < config_.action_dim; ++d)
      dq_da[d] = -input_grad[config_.state_dim + d] * inv_n;
    (void)actor_.backward(dq_da, actor_ws, actor_grads);
  }
  stats.actor_objective *= inv_n;
  actor_opt_.step(actor_, actor_grads);

  // --- target soft updates (Algorithm 2 lines 9-10) -------------------------
  target_critic_.soft_update_from(critic_, config_.tau);
  target_actor_.soft_update_from(actor_, config_.tau);

  ++train_steps_;
  return stats;
}

std::vector<double> DdpgAgent::actor_parameters() const {
  return actor_.parameters();
}

void DdpgAgent::set_actor_parameters(std::span<const double> params) {
  actor_.set_parameters(params);
}

void DdpgAgent::scale_learning_rates(double factor) {
  GNFV_REQUIRE(factor > 0.0, "scale_learning_rates: factor must be > 0");
  actor_opt_.set_learning_rate(actor_opt_.learning_rate() * factor);
  critic_opt_.set_learning_rate(critic_opt_.learning_rate() * factor);
}

void DdpgAgent::save_actor(const std::string& path) const {
  Checkpoint checkpoint;
  checkpoint.tag = "greennfv-actor";
  checkpoint.input_dim = config_.state_dim;
  checkpoint.output_dim = config_.action_dim;
  checkpoint.parameters = actor_.parameters();
  save_checkpoint(path, checkpoint);
}

void DdpgAgent::load_actor(const std::string& path) {
  const Checkpoint checkpoint = load_checkpoint(path);
  GNFV_REQUIRE(checkpoint.input_dim == config_.state_dim &&
                   checkpoint.output_dim == config_.action_dim,
               "load_actor: checkpoint dims do not match this agent");
  GNFV_REQUIRE(checkpoint.parameters.size() == actor_.num_parameters(),
               "load_actor: parameter count mismatch");
  actor_.set_parameters(checkpoint.parameters);
  // Deployment-time restores also reset the target copy so continued
  // training starts from the restored policy.
  target_actor_.copy_from(actor_);
}

}  // namespace greennfv::rl
