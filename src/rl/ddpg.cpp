#include "rl/ddpg.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math_util.hpp"
#include "rl/checkpoint.hpp"

namespace greennfv::rl {

Mlp DdpgAgent::build_actor(const DdpgConfig& config, Rng& rng) {
  std::vector<LayerSpec> layers;
  for (const std::size_t units : config.actor_hidden)
    layers.push_back({units, Activation::kRelu});
  layers.push_back({config.action_dim, Activation::kTanh});
  return Mlp(config.state_dim, layers, rng);
}

Mlp DdpgAgent::build_critic(const DdpgConfig& config, Rng& rng) {
  std::vector<LayerSpec> layers;
  for (const std::size_t units : config.critic_hidden)
    layers.push_back({units, Activation::kRelu});
  layers.push_back({1, Activation::kLinear});
  return Mlp(config.state_dim + config.action_dim, layers, rng);
}

namespace {

/// Validates before any network is constructed so errors carry DDPG
/// context rather than an MLP-internal message.
const DdpgConfig& validated(const DdpgConfig& config) {
  GNFV_REQUIRE(config.state_dim > 0, "DDPG: zero state dim");
  GNFV_REQUIRE(config.action_dim > 0, "DDPG: zero action dim");
  GNFV_REQUIRE(config.gamma > 0.0 && config.gamma <= 1.0,
               "DDPG: gamma out of (0,1]");
  GNFV_REQUIRE(config.tau > 0.0 && config.tau <= 1.0,
               "DDPG: tau out of (0,1]");
  GNFV_REQUIRE(config.batch_size >= 1, "DDPG: zero batch size");
  return config;
}

}  // namespace

DdpgAgent::DdpgAgent(DdpgConfig config, std::uint64_t seed)
    : config_(validated(config)),
      init_rng_(seed),
      actor_(build_actor(config_, init_rng_)),
      critic_(build_critic(config_, init_rng_)),
      target_actor_(build_actor(config_, init_rng_)),
      target_critic_(build_critic(config_, init_rng_)),
      actor_opt_(actor_, config_.actor_lr),
      critic_opt_(critic_, config_.critic_lr) {
  // Targets start as exact copies (Algorithm 2 initialization).
  target_actor_.copy_from(actor_);
  target_critic_.copy_from(critic_);
}

std::vector<double> DdpgAgent::act(std::span<const double> state) const {
  return actor_.forward(state);
}

std::vector<double> DdpgAgent::act_noisy(std::span<const double> state,
                                         NoiseProcess& noise,
                                         Rng& rng) const {
  std::vector<double> action = actor_.forward(state);
  const std::vector<double> n = noise.sample(rng);
  GNFV_ASSERT(n.size() == action.size(), "noise dimension mismatch");
  for (std::size_t i = 0; i < action.size(); ++i) {
    action[i] = math_util::clamp(action[i] + n[i], -1.0, 1.0);
  }
  return action;
}

std::vector<double> DdpgAgent::critic_input(
    std::span<const double> state, std::span<const double> action) const {
  std::vector<double> input;
  input.reserve(state.size() + action.size());
  input.insert(input.end(), state.begin(), state.end());
  input.insert(input.end(), action.begin(), action.end());
  return input;
}

double DdpgAgent::q_value(std::span<const double> state,
                          std::span<const double> action) const {
  return critic_.forward(critic_input(state, action))[0];
}

TrainStats DdpgAgent::train_step(ReplayInterface& replay, Rng& rng) {
  GNFV_REQUIRE(replay.size() >= config_.batch_size,
               "DDPG::train_step: replay underfilled");
  const Minibatch batch = replay.sample(config_.batch_size, rng);
  const auto n = batch.size();
  const double inv_n = 1.0 / static_cast<double>(n);

  TrainStats stats;
  stats.td_errors.reserve(n);
  stats.indices = batch.indices;

  // --- critic update (Algorithm 2 lines 4-6) -------------------------------
  Mlp::Gradients critic_grads = critic_.make_gradients();
  critic_grads.zero();
  Mlp::Workspace ws;
  for (std::size_t i = 0; i < n; ++i) {
    const Transition& t = batch.transitions[i];
    // y_i = r_i + γ·Q'(x_{i+1}, μ'(x_{i+1}))  (zero bootstrap at terminal)
    double y = t.reward;
    if (!t.done) {
      const std::vector<double> next_action =
          target_actor_.forward(t.next_state);
      const double next_q =
          target_critic_.forward(critic_input(t.next_state, next_action))[0];
      y += config_.gamma * next_q;
    }
    const std::vector<double> input = critic_input(t.state, t.action);
    const double q = critic_.forward(input, ws)[0];
    double td = q - y;
    stats.critic_loss += td * td;
    td = math_util::clamp(td, -config_.td_error_clip, config_.td_error_clip);
    stats.td_errors.push_back(std::fabs(td));
    // dL/dq for 0.5·w·td² (importance weight from PER).
    const double dq = td * batch.weights[i] * inv_n;
    const double grad[1] = {dq};
    (void)critic_.backward(std::span<const double>(grad, 1), ws,
                           critic_grads);
  }
  stats.critic_loss *= inv_n;
  critic_opt_.step(critic_, critic_grads);

  // --- actor update (Algorithm 2 lines 7-8, Eq. 6) --------------------------
  Mlp::Gradients actor_grads = actor_.make_gradients();
  actor_grads.zero();
  Mlp::Workspace actor_ws;
  Mlp::Workspace critic_ws;
  Mlp::Gradients critic_scratch = critic_.make_gradients();  // discarded
  for (std::size_t i = 0; i < n; ++i) {
    const Transition& t = batch.transitions[i];
    const std::vector<double> action = actor_.forward(t.state, actor_ws);
    const std::vector<double> input = critic_input(t.state, action);
    const double q = critic_.forward(input, critic_ws)[0];
    stats.actor_objective += q;
    // ∇_a Q: backprop 1.0 through the critic, slice the action block.
    critic_scratch.zero();
    const double one[1] = {1.0};
    const std::vector<double> input_grad = critic_.backward(
        std::span<const double>(one, 1), critic_ws, critic_scratch);
    // Gradient *ascent* on Q -> descend on -Q.
    std::vector<double> dq_da(config_.action_dim);
    for (std::size_t d = 0; d < config_.action_dim; ++d)
      dq_da[d] = -input_grad[config_.state_dim + d] * inv_n;
    (void)actor_.backward(dq_da, actor_ws, actor_grads);
  }
  stats.actor_objective *= inv_n;
  actor_opt_.step(actor_, actor_grads);

  // --- target soft updates (Algorithm 2 lines 9-10) -------------------------
  target_critic_.soft_update_from(critic_, config_.tau);
  target_actor_.soft_update_from(actor_, config_.tau);

  ++train_steps_;
  return stats;
}

std::vector<double> DdpgAgent::actor_parameters() const {
  return actor_.parameters();
}

void DdpgAgent::set_actor_parameters(std::span<const double> params) {
  actor_.set_parameters(params);
}

void DdpgAgent::scale_learning_rates(double factor) {
  GNFV_REQUIRE(factor > 0.0, "scale_learning_rates: factor must be > 0");
  actor_opt_.set_learning_rate(actor_opt_.learning_rate() * factor);
  critic_opt_.set_learning_rate(critic_opt_.learning_rate() * factor);
}

void DdpgAgent::save_actor(const std::string& path) const {
  Checkpoint checkpoint;
  checkpoint.tag = "greennfv-actor";
  checkpoint.input_dim = config_.state_dim;
  checkpoint.output_dim = config_.action_dim;
  checkpoint.parameters = actor_.parameters();
  save_checkpoint(path, checkpoint);
}

void DdpgAgent::load_actor(const std::string& path) {
  const Checkpoint checkpoint = load_checkpoint(path);
  GNFV_REQUIRE(checkpoint.input_dim == config_.state_dim &&
                   checkpoint.output_dim == config_.action_dim,
               "load_actor: checkpoint dims do not match this agent");
  GNFV_REQUIRE(checkpoint.parameters.size() == actor_.num_parameters(),
               "load_actor: parameter count mismatch");
  actor_.set_parameters(checkpoint.parameters);
  // Deployment-time restores also reset the target copy so continued
  // training starts from the restored policy.
  target_actor_.copy_from(actor_);
}

}  // namespace greennfv::rl
