#include "rl/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace greennfv::rl {

namespace {
constexpr const char* kMagic = "greennfv-checkpoint-v1";
}

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
  out << kMagic << '\n';
  out << checkpoint.tag << '\n';
  out << checkpoint.input_dim << ' ' << checkpoint.output_dim << ' '
      << checkpoint.parameters.size() << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < checkpoint.parameters.size(); ++i) {
    out << checkpoint.parameters[i]
        << ((i + 1) % 8 == 0 ? '\n' : ' ');
  }
  out << '\n';
  if (!out) throw std::runtime_error("checkpoint: write failed: " + path);
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic)
    throw std::runtime_error("checkpoint: bad magic in " + path);
  Checkpoint checkpoint;
  std::getline(in, checkpoint.tag);
  std::size_t count = 0;
  if (!(in >> checkpoint.input_dim >> checkpoint.output_dim >> count))
    throw std::runtime_error("checkpoint: malformed header in " + path);
  checkpoint.parameters.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(in >> checkpoint.parameters[i]))
      throw std::runtime_error("checkpoint: truncated parameters in " +
                               path);
  }
  return checkpoint;
}

}  // namespace greennfv::rl
