#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

/// \file env.hpp
/// The environment contract between the RL algorithms and whatever they
/// control. GreenNFV's NFV environment (core/environment.hpp) implements
/// it; tests use toy environments. Actions are normalized to [-1,1]^d —
/// decoding to engineering units is the environment's job.

namespace greennfv::rl {

class Environment {
 public:
  virtual ~Environment() = default;

  [[nodiscard]] virtual std::size_t state_dim() const = 0;
  [[nodiscard]] virtual std::size_t action_dim() const = 0;

  /// Starts a new episode; returns the initial state.
  [[nodiscard]] virtual std::vector<double> reset(std::uint64_t seed) = 0;

  struct StepResult {
    std::vector<double> next_state;
    double reward = 0.0;
    bool done = false;
  };

  /// Applies an action in [-1,1]^action_dim.
  [[nodiscard]] virtual StepResult step(std::span<const double> action) = 0;
};

/// Factory producing independent environment instances for Ape-X actors.
using EnvFactory =
    std::function<std::unique_ptr<Environment>(std::uint64_t seed)>;

}  // namespace greennfv::rl
