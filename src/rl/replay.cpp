#include "rl/replay.hpp"

#include "common/assert.hpp"
#include "telemetry/metrics.hpp"

namespace greennfv::rl {

UniformReplay::UniformReplay(std::size_t capacity) : capacity_(capacity) {
  GNFV_REQUIRE(capacity >= 1, "UniformReplay: capacity must be >= 1");
  storage_.reserve(capacity);
}

void UniformReplay::add(Transition t, double priority) {
  (void)priority;
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(t));
  } else {
    storage_[next_] = std::move(t);
    full_ = true;
  }
  next_ = (next_ + 1) % capacity_;
}

void UniformReplay::sample_into(std::size_t n, Rng& rng, Minibatch& out) {
  static auto& c_samples = telemetry::metrics::counter("rl.replay_samples");
  c_samples.add(n);
  GNFV_REQUIRE(size() >= n && n > 0, "UniformReplay::sample: not enough data");
  out.reset(n);
  out.weights.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = rng.uniform_u64(size());
    out.assign(i, storage_[idx]);
    out.indices.push_back(idx);
  }
}

void UniformReplay::update_priorities(
    const std::vector<std::uint64_t>& indices,
    const std::vector<double>& priorities) {
  (void)indices;
  (void)priorities;
}

std::size_t UniformReplay::size() const {
  return full_ ? capacity_ : storage_.size();
}

}  // namespace greennfv::rl
