#include "rl/replay.hpp"

#include "common/assert.hpp"

namespace greennfv::rl {

UniformReplay::UniformReplay(std::size_t capacity) : capacity_(capacity) {
  GNFV_REQUIRE(capacity >= 1, "UniformReplay: capacity must be >= 1");
  storage_.reserve(capacity);
}

void UniformReplay::add(Transition t, double priority) {
  (void)priority;
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(t));
  } else {
    storage_[next_] = std::move(t);
    full_ = true;
  }
  next_ = (next_ + 1) % capacity_;
}

Minibatch UniformReplay::sample(std::size_t n, Rng& rng) {
  GNFV_REQUIRE(size() >= n && n > 0, "UniformReplay::sample: not enough data");
  Minibatch batch;
  batch.transitions.reserve(n);
  batch.indices.reserve(n);
  batch.weights.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = rng.uniform_u64(size());
    batch.transitions.push_back(storage_[idx]);
    batch.indices.push_back(idx);
  }
  return batch;
}

void UniformReplay::update_priorities(
    const std::vector<std::uint64_t>& indices,
    const std::vector<double>& priorities) {
  (void)indices;
  (void)priorities;
}

std::size_t UniformReplay::size() const {
  return full_ ? capacity_ : storage_.size();
}

}  // namespace greennfv::rl
