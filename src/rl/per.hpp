#pragma once

#include <mutex>

#include "rl/replay.hpp"

/// \file per.hpp
/// Prioritized experience replay (Schaul et al., ICLR'16), the sampling
/// scheme Ape-X scales out and the paper's contribution (4) extends to
/// multiple workers. Proportional prioritization over a sum tree:
///
///   P(i) = p_i^alpha / Σ p^alpha,   w_i = (N · P(i))^-beta / max_j w_j
///
/// The buffer is mutex-guarded so Ape-X actor threads can add while the
/// learner samples — at GreenNFV's batch sizes lock contention is
/// negligible versus network math.

namespace greennfv::rl {

/// Binary-indexed sum tree over leaf priorities with O(log n) update and
/// prefix-sum sampling.
class SumTree {
 public:
  explicit SumTree(std::size_t capacity);

  void set(std::size_t index, double priority);
  [[nodiscard]] double get(std::size_t index) const;
  [[nodiscard]] double total() const;

  /// Finds the leaf whose cumulative range contains `mass` in [0, total()).
  [[nodiscard]] std::size_t find_prefix(double mass) const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::size_t base_;                ///< first leaf index in `nodes_`
  std::vector<double> nodes_;
};

struct PerConfig {
  std::size_t capacity = 1 << 17;
  double alpha = 0.6;               ///< prioritization strength
  double beta = 0.4;                ///< IS-correction start value
  double beta_final = 1.0;
  std::int64_t beta_anneal_steps = 100000;
  double epsilon = 1e-3;            ///< keeps every priority > 0
  double max_priority = 1.0;        ///< initial priority for new samples
};

class PrioritizedReplay final : public ReplayInterface {
 public:
  explicit PrioritizedReplay(PerConfig config);

  void add(Transition t, double priority) override;
  void sample_into(std::size_t n, Rng& rng, Minibatch& out) override;
  void update_priorities(const std::vector<std::uint64_t>& indices,
                         const std::vector<double>& priorities) override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::size_t capacity() const override;

  /// Removes the oldest `n` entries by zeroing their priorities (Ape-X's
  /// "periodically remove old experiences", Algorithm 3 line 18). They stay
  /// in storage but can no longer be sampled.
  void decay_oldest(std::size_t n);

  [[nodiscard]] double current_beta() const;

 private:
  PerConfig config_;
  mutable std::mutex mutex_;
  std::vector<Transition> storage_;
  SumTree tree_;
  std::size_t next_ = 0;
  bool full_ = false;
  std::int64_t sample_steps_ = 0;
  double max_seen_priority_;

  [[nodiscard]] std::size_t size_locked() const;
};

}  // namespace greennfv::rl
