#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"

/// \file noise.hpp
/// Exploration noise for DDPG's behaviour policy (Algorithm 2 line 1:
/// a_t = μ(x) + N_t). Ornstein-Uhlenbeck is the classic temporally
/// correlated choice from the DDPG paper; uncorrelated Gaussian with decay
/// is the simpler modern alternative. Both are provided and ablatable.

namespace greennfv::rl {

class NoiseProcess {
 public:
  virtual ~NoiseProcess() = default;
  [[nodiscard]] virtual std::size_t dim() const = 0;
  /// Writes the next noise vector into `out` (size dim()) without
  /// allocating — the per-env-step rollout path.
  virtual void sample_into(Rng& rng, std::span<double> out) = 0;
  /// Next noise vector (one component per action dimension).
  [[nodiscard]] std::vector<double> sample(Rng& rng) {
    std::vector<double> out(dim());
    sample_into(rng, out);
    return out;
  }
  virtual void reset() = 0;
};

/// Ornstein-Uhlenbeck: dx = theta*(mu - x)*dt + sigma*sqrt(dt)*N(0,1).
class OuNoise final : public NoiseProcess {
 public:
  OuNoise(std::size_t dim, double theta = 0.15, double sigma = 0.2,
          double dt = 1.0, double mu = 0.0);

  [[nodiscard]] std::size_t dim() const override { return dim_; }
  void sample_into(Rng& rng, std::span<double> out) override;
  void reset() override;

 private:
  std::size_t dim_;
  double theta_;
  double sigma_;
  double dt_;
  double mu_;
  std::vector<double> state_;
};

/// Independent Gaussian noise with multiplicative decay per sample.
class GaussianNoise final : public NoiseProcess {
 public:
  GaussianNoise(std::size_t dim, double sigma = 0.2, double decay = 1.0,
                double sigma_min = 0.01);

  [[nodiscard]] std::size_t dim() const override { return dim_; }
  void sample_into(Rng& rng, std::span<double> out) override;
  void reset() override;

  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  std::size_t dim_;
  double sigma0_;
  double sigma_;
  double decay_;
  double sigma_min_;
};

}  // namespace greennfv::rl
