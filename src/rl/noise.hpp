#pragma once

#include <vector>

#include "common/rng.hpp"

/// \file noise.hpp
/// Exploration noise for DDPG's behaviour policy (Algorithm 2 line 1:
/// a_t = μ(x) + N_t). Ornstein-Uhlenbeck is the classic temporally
/// correlated choice from the DDPG paper; uncorrelated Gaussian with decay
/// is the simpler modern alternative. Both are provided and ablatable.

namespace greennfv::rl {

class NoiseProcess {
 public:
  virtual ~NoiseProcess() = default;
  /// Next noise vector (one component per action dimension).
  [[nodiscard]] virtual std::vector<double> sample(Rng& rng) = 0;
  virtual void reset() = 0;
};

/// Ornstein-Uhlenbeck: dx = theta*(mu - x)*dt + sigma*sqrt(dt)*N(0,1).
class OuNoise final : public NoiseProcess {
 public:
  OuNoise(std::size_t dim, double theta = 0.15, double sigma = 0.2,
          double dt = 1.0, double mu = 0.0);

  [[nodiscard]] std::vector<double> sample(Rng& rng) override;
  void reset() override;

 private:
  std::size_t dim_;
  double theta_;
  double sigma_;
  double dt_;
  double mu_;
  std::vector<double> state_;
};

/// Independent Gaussian noise with multiplicative decay per sample.
class GaussianNoise final : public NoiseProcess {
 public:
  GaussianNoise(std::size_t dim, double sigma = 0.2, double decay = 1.0,
                double sigma_min = 0.01);

  [[nodiscard]] std::vector<double> sample(Rng& rng) override;
  void reset() override;

  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  std::size_t dim_;
  double sigma0_;
  double sigma_;
  double decay_;
  double sigma_min_;
};

}  // namespace greennfv::rl
