#include "rl/apex.hpp"

#include <chrono>
#include <thread>

#include "common/assert.hpp"

namespace greennfv::rl {

ApexRunner::ApexRunner(DdpgConfig ddpg_config, ApexConfig apex_config,
                       EnvFactory env_factory, std::uint64_t seed)
    : ddpg_config_(ddpg_config),
      apex_config_(apex_config),
      env_factory_(std::move(env_factory)),
      seed_(seed),
      agent_(ddpg_config, seed),
      replay_(apex_config.per) {
  GNFV_REQUIRE(apex_config_.num_actors >= 1, "ApeX: need >= 1 actor");
  GNFV_REQUIRE(apex_config_.episodes_per_actor >= 1,
               "ApeX: need >= 1 episode");
  GNFV_REQUIRE(apex_config_.steps_per_episode >= 1, "ApeX: need >= 1 step");
  GNFV_REQUIRE(static_cast<std::size_t>(ddpg_config_.batch_size) <=
                   apex_config_.learn_start,
               "ApeX: learn_start must cover one batch");
  publish_params();
}

void ApexRunner::publish_params() {
  std::lock_guard<std::mutex> lock(param_mutex_);
  published_params_ = agent_.actor_parameters();
  param_version_.fetch_add(1, std::memory_order_release);
}

ApexResult ApexRunner::train(EpisodeCallback on_episode) {
  ApexResult result;
  std::atomic<std::int64_t> transitions{0};
  std::atomic<int> actors_running{apex_config_.num_actors};
  std::atomic<bool> stop_learner{false};

  // Tail-window reward tracking for the result summary.
  std::mutex reward_mutex;
  std::vector<double> episode_rewards;
  episode_rewards.reserve(static_cast<std::size_t>(
      apex_config_.num_actors * apex_config_.episodes_per_actor));

  // --- actor threads (NF_CONTROLLER, Algorithm 3 lines 1-11) ---------------
  std::vector<std::thread> actors;
  actors.reserve(static_cast<std::size_t>(apex_config_.num_actors));
  for (int actor_id = 0; actor_id < apex_config_.num_actors; ++actor_id) {
    actors.emplace_back([&, actor_id] {
      Rng rng(seed_ ^ (0x9E3779B97F4A7C15ull *
                       static_cast<std::uint64_t>(actor_id + 1)));
      auto env = env_factory_(rng.next_u64());
      GNFV_REQUIRE(env != nullptr, "ApeX: env factory returned null");
      GNFV_REQUIRE(env->state_dim() == ddpg_config_.state_dim &&
                       env->action_dim() == ddpg_config_.action_dim,
                   "ApeX: env dims disagree with DDPG config");

      // Local policy copy, synced from the learner (line 2).
      DdpgAgent local(ddpg_config_, rng.next_u64());
      std::int64_t seen_version = -1;
      GaussianNoise noise(ddpg_config_.action_dim,
                          apex_config_.noise_sigma,
                          apex_config_.noise_decay);
      // Per-thread inference scratch: the act path touches no heap.
      DdpgAgent::ActScratch scratch;
      std::vector<double> action(ddpg_config_.action_dim);
      std::vector<Transition> local_buffer;
      local_buffer.reserve(
          static_cast<std::size_t>(apex_config_.local_buffer_flush));

      for (int episode = 0; episode < apex_config_.episodes_per_actor;
           ++episode) {
        // Parameter pull (lines 2 and 9).
        if (episode % apex_config_.param_sync_interval == 0) {
          const std::int64_t version =
              param_version_.load(std::memory_order_acquire);
          if (version != seen_version) {
            std::lock_guard<std::mutex> lock(param_mutex_);
            local.set_actor_parameters(published_params_);
            seen_version = version;
          }
        }

        std::vector<double> state = env->reset(rng.next_u64());
        double reward_sum = 0.0;
        double last_reward = 0.0;
        for (int step = 0; step < apex_config_.steps_per_episode; ++step) {
          local.act_noisy_into(state, noise, rng, scratch, action);
          auto step_result = env->step(action);
          Transition t;
          t.state = state;
          t.action = action;
          t.reward = step_result.reward;
          t.next_state = step_result.next_state;
          t.done = step_result.done ||
                   step + 1 == apex_config_.steps_per_episode;
          local_buffer.push_back(std::move(t));
          reward_sum += step_result.reward;
          last_reward = step_result.reward;
          state = std::move(step_result.next_state);

          // Flush to the central replay (line 8).
          if (static_cast<int>(local_buffer.size()) >=
              apex_config_.local_buffer_flush) {
            for (auto& tr : local_buffer) replay_.add(std::move(tr), 0.0);
            transitions.fetch_add(
                static_cast<std::int64_t>(local_buffer.size()),
                std::memory_order_relaxed);
            local_buffer.clear();
          }
          if (step_result.done) break;
        }

        const double mean_reward =
            reward_sum / apex_config_.steps_per_episode;
        {
          std::lock_guard<std::mutex> lock(reward_mutex);
          episode_rewards.push_back(mean_reward);
        }
        if (on_episode) {
          std::lock_guard<std::mutex> lock(callback_mutex_);
          on_episode(EpisodeReport{actor_id, episode, mean_reward,
                                   last_reward});
        }
      }
      // Final flush.
      if (!local_buffer.empty()) {
        for (auto& tr : local_buffer) replay_.add(std::move(tr), 0.0);
        transitions.fetch_add(
            static_cast<std::int64_t>(local_buffer.size()),
            std::memory_order_relaxed);
      }
      actors_running.fetch_sub(1, std::memory_order_release);
    });
  }

  // --- learner thread (CENTRAL_LEARNER, Algorithm 3 lines 12-19) -----------
  std::thread learner([&] {
    Rng rng(seed_ ^ 0xBADC0FFEE0DDF00Dull);
    std::int64_t steps = 0;
    while (!stop_learner.load(std::memory_order_acquire) &&
           steps < apex_config_.max_learner_steps) {
      if (replay_.size() < apex_config_.learn_start) {
        if (actors_running.load(std::memory_order_acquire) == 0) break;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      const TrainStats& stats = agent_.train_step(replay_, rng);
      replay_.update_priorities(stats.indices, stats.td_errors);
      ++steps;
      if (steps % 16 == 0) publish_params();
      if (apex_config_.decay_batch > 0 &&
          steps % apex_config_.decay_interval == 0) {
        replay_.decay_oldest(apex_config_.decay_batch);
      }
      if (actors_running.load(std::memory_order_acquire) == 0 &&
          steps >= apex_config_.max_learner_steps) {
        break;
      }
      // Once actors finish, drain a bounded number of extra updates.
      if (actors_running.load(std::memory_order_acquire) == 0) {
        static constexpr std::int64_t kDrainSteps = 64;
        for (std::int64_t d = 0;
             d < kDrainSteps && steps < apex_config_.max_learner_steps;
             ++d) {
          const TrainStats& extra = agent_.train_step(replay_, rng);
          replay_.update_priorities(extra.indices, extra.td_errors);
          ++steps;
        }
        break;
      }
    }
    publish_params();
    result.learner_steps = steps;
  });

  for (auto& actor : actors) actor.join();
  stop_learner.store(false, std::memory_order_release);  // let it drain
  learner.join();

  result.transitions_collected = transitions.load();
  {
    std::lock_guard<std::mutex> lock(reward_mutex);
    const std::size_t n = episode_rewards.size();
    const std::size_t tail = std::max<std::size_t>(1, n / 10);
    double sum = 0.0;
    for (std::size_t i = n - tail; i < n; ++i) sum += episode_rewards[i];
    result.final_mean_reward = n > 0 ? sum / static_cast<double>(tail) : 0.0;
  }
  return result;
}

}  // namespace greennfv::rl
