#include "rl/noise.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace greennfv::rl {

OuNoise::OuNoise(std::size_t dim, double theta, double sigma, double dt,
                 double mu)
    : dim_(dim), theta_(theta), sigma_(sigma), dt_(dt), mu_(mu),
      state_(dim, mu) {
  GNFV_REQUIRE(dim >= 1, "OuNoise: zero dimension");
  GNFV_REQUIRE(theta >= 0.0 && sigma >= 0.0 && dt > 0.0,
               "OuNoise: bad parameters");
}

std::vector<double> OuNoise::sample(Rng& rng) {
  const double sqrt_dt = std::sqrt(dt_);
  for (double& x : state_) {
    x += theta_ * (mu_ - x) * dt_ + sigma_ * sqrt_dt * rng.normal();
  }
  return state_;
}

void OuNoise::reset() { state_.assign(dim_, mu_); }

GaussianNoise::GaussianNoise(std::size_t dim, double sigma, double decay,
                             double sigma_min)
    : dim_(dim), sigma0_(sigma), sigma_(sigma), decay_(decay),
      sigma_min_(sigma_min) {
  GNFV_REQUIRE(dim >= 1, "GaussianNoise: zero dimension");
  GNFV_REQUIRE(sigma >= 0.0 && decay > 0.0 && decay <= 1.0,
               "GaussianNoise: bad parameters");
}

std::vector<double> GaussianNoise::sample(Rng& rng) {
  std::vector<double> noise(dim_);
  for (double& x : noise) x = rng.normal(0.0, sigma_);
  sigma_ = std::max(sigma_min_, sigma_ * decay_);
  return noise;
}

void GaussianNoise::reset() { sigma_ = sigma0_; }

}  // namespace greennfv::rl
