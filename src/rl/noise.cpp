#include "rl/noise.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace greennfv::rl {

OuNoise::OuNoise(std::size_t dim, double theta, double sigma, double dt,
                 double mu)
    : dim_(dim), theta_(theta), sigma_(sigma), dt_(dt), mu_(mu),
      state_(dim, mu) {
  GNFV_REQUIRE(dim >= 1, "OuNoise: zero dimension");
  GNFV_REQUIRE(theta >= 0.0 && sigma >= 0.0 && dt > 0.0,
               "OuNoise: bad parameters");
}

void OuNoise::sample_into(Rng& rng, std::span<double> out) {
  GNFV_ASSERT(out.size() == dim_, "OuNoise: output dimension mismatch");
  const double sqrt_dt = std::sqrt(dt_);
  for (std::size_t i = 0; i < dim_; ++i) {
    state_[i] +=
        theta_ * (mu_ - state_[i]) * dt_ + sigma_ * sqrt_dt * rng.normal();
    out[i] = state_[i];
  }
}

void OuNoise::reset() { state_.assign(dim_, mu_); }

GaussianNoise::GaussianNoise(std::size_t dim, double sigma, double decay,
                             double sigma_min)
    : dim_(dim), sigma0_(sigma), sigma_(sigma), decay_(decay),
      sigma_min_(sigma_min) {
  GNFV_REQUIRE(dim >= 1, "GaussianNoise: zero dimension");
  GNFV_REQUIRE(sigma >= 0.0 && decay > 0.0 && decay <= 1.0,
               "GaussianNoise: bad parameters");
}

void GaussianNoise::sample_into(Rng& rng, std::span<double> out) {
  GNFV_ASSERT(out.size() == dim_, "GaussianNoise: output dimension mismatch");
  for (double& x : out) x = rng.normal(0.0, sigma_);
  sigma_ = std::max(sigma_min_, sigma_ * decay_);
}

void GaussianNoise::reset() { sigma_ = sigma0_; }

}  // namespace greennfv::rl
