#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

/// \file replay.hpp
/// Experience replay (Lin '92): transitions and the uniform-sampling ring
/// buffer. The prioritized variant lives in per.hpp; both implement
/// ReplayInterface so the DDPG trainer and the ablation benches can swap
/// them freely.

namespace greennfv::rl {

/// One (x, a, r, x') tuple (Algorithm 2, line 2).
struct Transition {
  std::vector<double> state;
  std::vector<double> action;
  double reward = 0.0;
  std::vector<double> next_state;
  bool done = false;
};

/// A sampled minibatch; `indices`/`weights` support prioritized replay
/// (weights are all 1 for uniform sampling). Transitions are *copies*:
/// in the Ape-X architecture actor threads keep writing into the buffer
/// while the learner consumes a batch, so handing out pointers into
/// storage would race with slot reuse.
struct Minibatch {
  std::vector<Transition> transitions;
  std::vector<std::uint64_t> indices;
  std::vector<double> weights;

  [[nodiscard]] std::size_t size() const { return transitions.size(); }

  /// Reshapes for `n` transitions, keeping every buffer's capacity. With a
  /// stable batch geometry the minibatch becomes a fixed arena: repeated
  /// sample_into calls copy transition payloads without allocating.
  void reset(std::size_t n) {
    transitions.resize(n);
    indices.clear();
    weights.clear();
  }

  /// Field-wise copy into slot `i` (vector assigns reuse capacity).
  void assign(std::size_t i, const Transition& t) {
    Transition& dst = transitions[i];
    dst.state.assign(t.state.begin(), t.state.end());
    dst.action.assign(t.action.begin(), t.action.end());
    dst.next_state.assign(t.next_state.begin(), t.next_state.end());
    dst.reward = t.reward;
    dst.done = t.done;
  }
};

class ReplayInterface {
 public:
  virtual ~ReplayInterface() = default;

  /// Stores a transition (evicting the oldest when full).
  virtual void add(Transition t, double priority) = 0;

  /// Samples a minibatch of `n` into `out`, reusing its buffers — the
  /// training hot path is copy-once into pinned storage. Requires
  /// size() >= n.
  virtual void sample_into(std::size_t n, Rng& rng, Minibatch& out) = 0;

  /// Convenience wrapper returning a fresh minibatch (draws the same RNG
  /// sequence as sample_into).
  [[nodiscard]] Minibatch sample(std::size_t n, Rng& rng) {
    Minibatch batch;
    sample_into(n, rng, batch);
    return batch;
  }

  /// Updates priorities after a train step (no-op for uniform replay).
  virtual void update_priorities(const std::vector<std::uint64_t>& indices,
                                 const std::vector<double>& priorities) = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t capacity() const = 0;
};

/// Plain ring buffer with uniform sampling.
class UniformReplay final : public ReplayInterface {
 public:
  explicit UniformReplay(std::size_t capacity);

  void add(Transition t, double priority) override;
  void sample_into(std::size_t n, Rng& rng, Minibatch& out) override;
  void update_priorities(const std::vector<std::uint64_t>& indices,
                         const std::vector<double>& priorities) override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::size_t capacity() const override { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<Transition> storage_;
  std::size_t next_ = 0;
  bool full_ = false;
};

}  // namespace greennfv::rl
