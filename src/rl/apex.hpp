#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "rl/ddpg.hpp"
#include "rl/env.hpp"
#include "rl/per.hpp"

/// \file apex.hpp
/// The Ape-X distributed learning architecture (Horgan et al., ICLR'18) the
/// paper layers on DDPG (§4.3.2, Algorithm 3):
///
///   * N actor threads (NF_CONTROLLER role) run their own environment with
///     a local copy of the actor network plus exploration noise, buffer
///     transitions locally, and periodically flush them into the shared
///     prioritized replay and pull fresh parameters.
///   * One learner thread (CENTRAL_LEARNER role) samples prioritized
///     minibatches, runs DDPG updates, writes back TD-error priorities,
///     publishes versioned actor parameters, and periodically decays the
///     oldest experiences out of the buffer.
///
/// In the paper actors live on separate servers; here they are threads with
/// the same data flow (local buffer -> central replay -> parameter sync).

namespace greennfv::rl {

struct ApexConfig {
  int num_actors = 2;
  /// Episode budget per actor.
  int episodes_per_actor = 500;
  /// Environment steps per episode.
  int steps_per_episode = 8;
  /// Actor flushes its local buffer after this many transitions
  /// (Algorithm 3 line 8: "Periodically: replay_buffer.STORE(local)").
  int local_buffer_flush = 16;
  /// Actor pulls parameters every this many episodes (line 9).
  int param_sync_interval = 1;
  /// Learner waits until the replay holds this many transitions.
  std::size_t learn_start = 256;
  /// Learner updates per second are naturally bounded by CPU; this caps
  /// total updates to keep runs deterministic in tests.
  std::int64_t max_learner_steps = 1000000;
  /// Remove this many oldest samples every `decay_interval` learner steps
  /// (line 18: "periodically remove the old experiences").
  std::size_t decay_batch = 0;
  std::int64_t decay_interval = 10000;
  /// Exploration noise.
  double noise_sigma = 0.25;
  double noise_decay = 0.9995;
  PerConfig per;
};

/// Aggregate of one actor's episode (for progress callbacks).
struct EpisodeReport {
  int actor_id = 0;
  int episode = 0;
  double mean_reward = 0.0;
  double last_reward = 0.0;
};

using EpisodeCallback = std::function<void(const EpisodeReport&)>;

/// Result of a full distributed training run.
struct ApexResult {
  std::int64_t learner_steps = 0;
  std::int64_t transitions_collected = 0;
  double final_mean_reward = 0.0;  ///< mean over the last 10% of episodes
};

class ApexRunner {
 public:
  /// The runner owns the learner-side agent; `env_factory` builds one
  /// environment per actor.
  ApexRunner(DdpgConfig ddpg_config, ApexConfig apex_config,
             EnvFactory env_factory, std::uint64_t seed);

  /// Runs actors + learner to completion. `on_episode` (optional) is
  /// invoked from actor threads under a mutex — keep it cheap.
  ApexResult train(EpisodeCallback on_episode = nullptr);

  /// Access to the trained agent after (or before) train().
  [[nodiscard]] DdpgAgent& agent() { return agent_; }
  [[nodiscard]] const DdpgAgent& agent() const { return agent_; }

  [[nodiscard]] PrioritizedReplay& replay() { return replay_; }

 private:
  DdpgConfig ddpg_config_;
  ApexConfig apex_config_;
  EnvFactory env_factory_;
  std::uint64_t seed_;

  DdpgAgent agent_;
  PrioritizedReplay replay_;

  // Versioned actor-parameter snapshot the actors poll.
  std::mutex param_mutex_;
  std::vector<double> published_params_;
  std::atomic<std::int64_t> param_version_{0};

  std::mutex callback_mutex_;

  void publish_params();
};

}  // namespace greennfv::rl
