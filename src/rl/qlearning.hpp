#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

/// \file qlearning.hpp
/// Tabular Q-learning (Watkins & Dayan '92) over uniformly discretized
/// state and action spaces — the paper's Q-learning comparison model. The
/// paper's point (§4.3) is exactly this model's weakness: with k levels per
/// knob the action table grows O(k^5), so fine-tuning is impossible; Fig. 9
/// quantifies the resulting throughput gap against DDPG.

namespace greennfv::rl {

/// Uniform discretizer over [-1,1]^dim with `levels` bins per dimension.
class Discretizer {
 public:
  Discretizer(std::size_t dim, int levels);

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] int levels() const { return levels_; }

  /// Number of distinct cells = levels^dim (must fit in 64 bits).
  [[nodiscard]] std::uint64_t num_cells() const { return num_cells_; }

  /// Cell index of a point in [-1,1]^dim.
  [[nodiscard]] std::uint64_t encode(std::span<const double> point) const;

  /// Cell-center coordinates of a cell index.
  [[nodiscard]] std::vector<double> decode(std::uint64_t cell) const;

 private:
  std::size_t dim_;
  int levels_;
  std::uint64_t num_cells_;
};

struct QLearningConfig {
  std::size_t state_dim = 0;
  std::size_t action_dim = 0;
  int state_levels = 4;
  int action_levels = 3;
  double alpha = 0.1;        ///< learning rate
  double gamma = 0.95;       ///< discount
  double epsilon = 1.0;      ///< initial exploration
  double epsilon_min = 0.05;
  double epsilon_decay = 0.999;
};

class QLearningAgent {
 public:
  QLearningAgent(QLearningConfig config, std::uint64_t seed);

  /// ε-greedy action (returns cell-center coordinates in [-1,1]^action_dim).
  [[nodiscard]] std::vector<double> act(std::span<const double> state);

  /// Greedy action (evaluation mode).
  [[nodiscard]] std::vector<double> act_greedy(
      std::span<const double> state) const;

  /// Q(s,a) += α(r + γ·max_a' Q(s',a') − Q(s,a)); decays ε.
  void update(std::span<const double> state, std::span<const double> action,
              double reward, std::span<const double> next_state, bool done);

  [[nodiscard]] double epsilon() const { return epsilon_; }
  [[nodiscard]] std::size_t table_entries() const { return table_.size(); }
  [[nodiscard]] std::uint64_t num_actions() const {
    return action_disc_.num_cells();
  }
  [[nodiscard]] std::size_t config_state_dim() const {
    return config_.state_dim;
  }
  [[nodiscard]] std::size_t config_action_dim() const {
    return config_.action_dim;
  }

 private:
  QLearningConfig config_;
  Discretizer state_disc_;
  Discretizer action_disc_;
  /// Sparse table keyed by state cell; values = per-action Q row.
  std::unordered_map<std::uint64_t, std::vector<double>> table_;
  double epsilon_;
  Rng rng_;

  [[nodiscard]] std::vector<double>& q_row(std::uint64_t state_cell);
  [[nodiscard]] std::uint64_t best_action(
      const std::vector<double>& row) const;
};

}  // namespace greennfv::rl
