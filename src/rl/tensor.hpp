#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

/// \file tensor.hpp
/// Dense row-major matrix and the handful of BLAS-1/2 kernels the MLP
/// needs. Kept deliberately small: the networks in GreenNFV are a few
/// hundred units wide, where simple unrolled loops beat any dependency.

namespace greennfv::rl {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    GNFV_ASSERT(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    GNFV_ASSERT(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] std::span<double> flat() { return data_; }
  [[nodiscard]] std::span<const double> flat() const { return data_; }

  /// Row `r` as a span.
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    GNFV_ASSERT(r < rows_, "Matrix: row out of range");
    return std::span<const double>(data_.data() + r * cols_, cols_);
  }

  void fill(double value) { data_.assign(data_.size(), value); }

  /// Xavier/Glorot uniform initialization (the standard for tanh nets,
  /// also what DDPG's reference implementation uses for hidden layers).
  void xavier_init(Rng& rng);

  /// Uniform init in [-bound, bound] (DDPG initializes its output layers
  /// at 3e-3 so initial actions/values sit near zero).
  void uniform_init(Rng& rng, double bound);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = W x + b. Requires y.size()==W.rows(), x.size()==W.cols().
void matvec(const Matrix& w, std::span<const double> x,
            std::span<const double> b, std::span<double> y);

/// x_grad = W^T y_grad (backprop through the linear map).
void matvec_transpose(const Matrix& w, std::span<const double> y_grad,
                      std::span<double> x_grad);

/// dW += y_grad x^T (outer-product gradient accumulation).
void accumulate_outer(Matrix& dw, std::span<const double> y_grad,
                      std::span<const double> x);

/// Dot product.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// L2 norm.
[[nodiscard]] double norm2(std::span<const double> x);

}  // namespace greennfv::rl
