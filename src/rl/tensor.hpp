#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

/// \file tensor.hpp
/// Dense row-major matrix, the handful of BLAS-1/2 kernels the per-sample
/// reference path needs, and the blocked BLAS-3 (GEMM) kernels behind the
/// batched training engine. Kept deliberately small: the networks in
/// GreenNFV are a few hundred units wide, where cache blocking pays but a
/// full BLAS dependency would not.
///
/// Determinism contract: every GEMM accumulates each output element over
/// the reduction index k in strictly increasing order — blocking only ever
/// tiles the non-reduced dimensions. A given seed therefore produces
/// bit-identical results run to run, and the batched path reproduces the
/// per-sample reference path's floating-point sums.

namespace greennfv::rl {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    GNFV_ASSERT(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    GNFV_ASSERT(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] std::span<double> flat() { return data_; }
  [[nodiscard]] std::span<const double> flat() const { return data_; }

  /// Row `r` as a span.
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    GNFV_ASSERT(r < rows_, "Matrix: row out of range");
    return std::span<const double>(data_.data() + r * cols_, cols_);
  }

  void fill(double value) { data_.assign(data_.size(), value); }

  /// Reshapes in place. Shrinking or same-size reshapes never release or
  /// acquire memory, so workspaces resized to a stable geometry are
  /// allocation-free after warm-up. New elements are zero.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols, 0.0);
  }

  /// Xavier/Glorot uniform initialization (the standard for tanh nets,
  /// also what DDPG's reference implementation uses for hidden layers).
  void xavier_init(Rng& rng);

  /// Uniform init in [-bound, bound] (DDPG initializes its output layers
  /// at 3e-3 so initial actions/values sit near zero).
  void uniform_init(Rng& rng, double bound);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = W x + b. Requires y.size()==W.rows(), x.size()==W.cols().
void matvec(const Matrix& w, std::span<const double> x,
            std::span<const double> b, std::span<double> y);

/// Bit-identical to matvec (same per-row accumulation order) but computes
/// four output rows at a time so the add chains overlap — the inference
/// hot path (Mlp::forward_into). matvec stays as the reference kernel the
/// per-sample training path is benchmarked against.
void matvec4(const Matrix& w, std::span<const double> x,
             std::span<const double> b, std::span<double> y);

/// x_grad = W^T y_grad (backprop through the linear map).
void matvec_transpose(const Matrix& w, std::span<const double> y_grad,
                      std::span<double> x_grad);

/// dW += y_grad x^T (outer-product gradient accumulation).
void accumulate_outer(Matrix& dw, std::span<const double> y_grad,
                      std::span<const double> x);

// --- batched (BLAS-3) kernels ----------------------------------------------
//
// All three are row-major and blocked over the non-reduced dimensions only
// (see the determinism contract above). `accumulate` selects C += ... over
// C = ...; shapes are asserted.

/// C = A·B (or C += A·B). A: m×k, B: k×n, C: m×n. Backprop's dX = dY·W.
/// Inner structure streams B rows (contiguous) against register-tiled
/// blocks of C. (Only the edge tiles skip zero A elements; the branch-free
/// main tile multiplies them through — same values, ±0 sign aside.)
void gemm(const Matrix& a, const Matrix& b, Matrix& c,
          bool accumulate = false);

/// C = Aᵀ·B (or C += Aᵀ·B). A: k×m, B: k×n, C: m×n. The minibatch weight
/// gradient dW += dYᵀ·X, where k is the batch dimension: the rank-1 updates
/// land in batch order, matching per-sample accumulate_outer bit for bit.
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c,
             bool accumulate = false);

/// C = A·Bᵀ (+ per-column bias). A: m×k, B: n×k, C: m×n. The batched
/// forward Y = X·Wᵀ + b: each output element's accumulator is seeded with
/// bias[j] (when given) and then accumulates k in increasing order — the
/// same sum matvec computes per sample.
void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c,
             std::span<const double> bias = {});

/// y[j] += Σ_i a(i, j) — minibatch bias gradient, accumulated over rows in
/// increasing order (matches the per-sample axpy sequence).
void add_col_sums(const Matrix& a, std::span<double> y);

/// Dot product.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// L2 norm.
[[nodiscard]] double norm2(std::span<const double> x);

}  // namespace greennfv::rl
