#pragma once

#include <string>
#include <vector>

/// \file checkpoint.hpp
/// Policy checkpointing. GreenNFV's economics hinge on "the model needs to
/// be trained only once before deployment and is run many times" (§5.3) —
/// which requires persisting trained parameters. The format is a small
/// self-describing text file (magic, dims, flat parameter list) so
/// checkpoints are portable and diffable; precision is full round-trip
/// (%.17g).

namespace greennfv::rl {

/// A named flat parameter vector with its interface dims.
struct Checkpoint {
  std::string tag;            ///< e.g. "greennfv-actor"
  std::size_t input_dim = 0;
  std::size_t output_dim = 0;
  std::vector<double> parameters;
};

/// Writes a checkpoint. Throws std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// Reads a checkpoint. Throws std::runtime_error on I/O failure or a
/// malformed/corrupt file (wrong magic, dim mismatch, short parameter
/// list).
[[nodiscard]] Checkpoint load_checkpoint(const std::string& path);

}  // namespace greennfv::rl
