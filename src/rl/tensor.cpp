#include "rl/tensor.hpp"

#include <cmath>

namespace greennfv::rl {

void Matrix::xavier_init(Rng& rng) {
  GNFV_REQUIRE(rows_ > 0 && cols_ > 0, "xavier_init on empty matrix");
  const double bound =
      std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (double& w : data_) w = rng.uniform(-bound, bound);
}

void Matrix::uniform_init(Rng& rng, double bound) {
  GNFV_REQUIRE(bound > 0.0, "uniform_init: bound must be positive");
  for (double& w : data_) w = rng.uniform(-bound, bound);
}

void matvec(const Matrix& w, std::span<const double> x,
            std::span<const double> b, std::span<double> y) {
  GNFV_ASSERT(x.size() == w.cols(), "matvec: x dimension mismatch");
  GNFV_ASSERT(y.size() == w.rows(), "matvec: y dimension mismatch");
  GNFV_ASSERT(b.size() == w.rows(), "matvec: b dimension mismatch");
  const double* wd = w.data();
  const std::size_t cols = w.cols();
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const double* row = wd + r * cols;
    double acc = b[r];
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void matvec_transpose(const Matrix& w, std::span<const double> y_grad,
                      std::span<double> x_grad) {
  GNFV_ASSERT(y_grad.size() == w.rows(), "matvec_T: y dimension mismatch");
  GNFV_ASSERT(x_grad.size() == w.cols(), "matvec_T: x dimension mismatch");
  for (double& g : x_grad) g = 0.0;
  const double* wd = w.data();
  const std::size_t cols = w.cols();
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const double g = y_grad[r];
    if (g == 0.0) continue;
    const double* row = wd + r * cols;
    for (std::size_t c = 0; c < cols; ++c) x_grad[c] += g * row[c];
  }
}

void accumulate_outer(Matrix& dw, std::span<const double> y_grad,
                      std::span<const double> x) {
  GNFV_ASSERT(y_grad.size() == dw.rows(), "outer: y dimension mismatch");
  GNFV_ASSERT(x.size() == dw.cols(), "outer: x dimension mismatch");
  double* dwd = dw.data();
  const std::size_t cols = dw.cols();
  for (std::size_t r = 0; r < dw.rows(); ++r) {
    const double g = y_grad[r];
    if (g == 0.0) continue;
    double* row = dwd + r * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += g * x[c];
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  GNFV_ASSERT(a.size() == b.size(), "dot: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  GNFV_ASSERT(x.size() == y.size(), "axpy: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(std::span<const double> x) {
  return std::sqrt(dot(x, x));
}

}  // namespace greennfv::rl
