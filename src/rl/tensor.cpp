#include "rl/tensor.hpp"

#include <cmath>

#include "telemetry/metrics.hpp"

namespace greennfv::rl {

namespace {
// One flight-recorder counter covers all three GEMM entry points — the
// interesting number is batched-kernel invocations per train step.
telemetry::metrics::Counter& c_gemm_calls() {
  static auto& c = telemetry::metrics::counter("rl.gemm_calls");
  return c;
}
}  // namespace

void Matrix::xavier_init(Rng& rng) {
  GNFV_REQUIRE(rows_ > 0 && cols_ > 0, "xavier_init on empty matrix");
  const double bound =
      std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (double& w : data_) w = rng.uniform(-bound, bound);
}

void Matrix::uniform_init(Rng& rng, double bound) {
  GNFV_REQUIRE(bound > 0.0, "uniform_init: bound must be positive");
  for (double& w : data_) w = rng.uniform(-bound, bound);
}

void matvec(const Matrix& w, std::span<const double> x,
            std::span<const double> b, std::span<double> y) {
  GNFV_ASSERT(x.size() == w.cols(), "matvec: x dimension mismatch");
  GNFV_ASSERT(y.size() == w.rows(), "matvec: y dimension mismatch");
  GNFV_ASSERT(b.size() == w.rows(), "matvec: b dimension mismatch");
  const double* wd = w.data();
  const std::size_t cols = w.cols();
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const double* row = wd + r * cols;
    double acc = b[r];
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  GNFV_ASSERT(a.size() == b.size(), "dot: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void matvec4(const Matrix& w, std::span<const double> x,
             std::span<const double> b, std::span<double> y) {
  GNFV_ASSERT(x.size() == w.cols(), "matvec4: x dimension mismatch");
  GNFV_ASSERT(y.size() == w.rows(), "matvec4: y dimension mismatch");
  GNFV_ASSERT(b.size() == w.rows(), "matvec4: b dimension mismatch");
  const double* wd = w.data();
  const std::size_t rows = w.rows();
  const std::size_t cols = w.cols();
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const double* r0 = wd + r * cols;
    const double* r1 = r0 + cols;
    const double* r2 = r1 + cols;
    const double* r3 = r2 + cols;
    double a0 = b[r], a1 = b[r + 1], a2 = b[r + 2], a3 = b[r + 3];
    for (std::size_t c = 0; c < cols; ++c) {
      const double xv = x[c];
      a0 += r0[c] * xv;
      a1 += r1[c] * xv;
      a2 += r2[c] * xv;
      a3 += r3[c] * xv;
    }
    y[r] = a0;
    y[r + 1] = a1;
    y[r + 2] = a2;
    y[r + 3] = a3;
  }
  for (; r < rows; ++r) {
    const double* row = wd + r * cols;
    double acc = b[r];
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void matvec_transpose(const Matrix& w, std::span<const double> y_grad,
                      std::span<double> x_grad) {
  GNFV_ASSERT(y_grad.size() == w.rows(), "matvec_T: y dimension mismatch");
  GNFV_ASSERT(x_grad.size() == w.cols(), "matvec_T: x dimension mismatch");
  for (double& g : x_grad) g = 0.0;
  const double* wd = w.data();
  const std::size_t cols = w.cols();
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const double g = y_grad[r];
    if (g == 0.0) continue;
    const double* row = wd + r * cols;
    for (std::size_t c = 0; c < cols; ++c) x_grad[c] += g * row[c];
  }
}

void accumulate_outer(Matrix& dw, std::span<const double> y_grad,
                      std::span<const double> x) {
  GNFV_ASSERT(y_grad.size() == dw.rows(), "outer: y dimension mismatch");
  GNFV_ASSERT(x.size() == dw.cols(), "outer: x dimension mismatch");
  double* dwd = dw.data();
  const std::size_t cols = dw.cols();
  for (std::size_t r = 0; r < dw.rows(); ++r) {
    const double g = y_grad[r];
    if (g == 0.0) continue;
    double* row = dwd + r * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += g * x[c];
  }
}

namespace {

/// Register-tile geometry for the shared GEMM core: kMR×kNR output
/// elements accumulate in registers while the reduction streams past, so
/// the adds form kMR·kNR independent chains (latency hidden) and the kNR
/// axis vectorizes — SIMD across *outputs*, never across the reduction,
/// which keeps every element's k-order fixed.
constexpr std::size_t kMR = 4;
constexpr std::size_t kNR = 16;

/// Packs a kMR-row slab of A reduction-major: pan[t·kMR + ii] = a(ii, t),
/// where a(ii, t) = ap[ii·si + t·st]. One O(kMR·k) pass per slab makes the
/// micro-kernel's four per-t loads contiguous — the layout the compiler
/// turns into a single vector load + broadcasts — for both the normal
/// (si=k, st=1) and transposed (si=1, st=m) left operands.
inline void pack_a_panel(const double* ap, std::size_t si, std::size_t st,
                         std::size_t kk, double* pan) {
  for (std::size_t t = 0; t < kk; ++t)
    for (std::size_t ii = 0; ii < kMR; ++ii)
      pan[t * kMR + ii] = ap[ii * si + t * st];
}

/// The micro-kernel: a kMR×kNR block of C accumulates in registers while
/// the packed A panel and B stream past. The four accumulator rows are
/// separate fixed-size arrays (not one 2-D array) so the compiler reliably
/// keeps each in vector registers. C carries the accumulator seed (bias /
/// zero / running sum), which keeps this body branch-free — variants that
/// seeded the registers directly measurably pessimized the codegen.
inline void tile_4x16(const double* pan, const double* bp, std::size_t ldb,
                      double* cp, std::size_t ldc, std::size_t kk) {
  double* c0 = cp;
  double* c1 = cp + ldc;
  double* c2 = cp + 2 * ldc;
  double* c3 = cp + 3 * ldc;
  double x0[kNR], x1[kNR], x2[kNR], x3[kNR];
  for (std::size_t jj = 0; jj < kNR; ++jj) {
    x0[jj] = c0[jj];
    x1[jj] = c1[jj];
    x2[jj] = c2[jj];
    x3[jj] = c3[jj];
  }
  for (std::size_t t = 0; t < kk; ++t) {
    const double* brow = bp + t * ldb;
    const double* av = pan + t * kMR;
    const double v0 = av[0];
    const double v1 = av[1];
    const double v2 = av[2];
    const double v3 = av[3];
    for (std::size_t jj = 0; jj < kNR; ++jj) x0[jj] += v0 * brow[jj];
    for (std::size_t jj = 0; jj < kNR; ++jj) x1[jj] += v1 * brow[jj];
    for (std::size_t jj = 0; jj < kNR; ++jj) x2[jj] += v2 * brow[jj];
    for (std::size_t jj = 0; jj < kNR; ++jj) x3[jj] += v3 * brow[jj];
  }
  for (std::size_t jj = 0; jj < kNR; ++jj) {
    c0[jj] = x0[jj];
    c1[jj] = x1[jj];
    c2[jj] = x2[jj];
    c3[jj] = x3[jj];
  }
}

/// Edge tiles (mr < kMR or nr < kNR): plain loops, same per-element order.
inline void edge_update(const double* ap, std::size_t si, std::size_t st,
                        const double* bp, std::size_t ldb, double* cp,
                        std::size_t ldc, std::size_t mr, std::size_t nr,
                        std::size_t kk) {
  for (std::size_t t = 0; t < kk; ++t) {
    const double* brow = bp + t * ldb;
    for (std::size_t ii = 0; ii < mr; ++ii) {
      const double av = ap[ii * si + t * st];
      if (av == 0.0) continue;
      double* crow = cp + ii * ldc;
      for (std::size_t jj = 0; jj < nr; ++jj) crow[jj] += av * brow[jj];
    }
  }
}

/// C(m×n) += Σ_t a(·, t)·B[t][·] over an already-initialized C (the init
/// pass carries the accumulator seed: zero, bias, or a running sum). B
/// must be reduction-major (row t contiguous, leading dimension n).
void gemm_core(const double* ap, std::size_t si, std::size_t st,
               const double* bp, double* cp, std::size_t m, std::size_t n,
               std::size_t kk) {
  const std::size_t m_main = m - m % kMR;
  const std::size_t n_main = n - n % kNR;
  static thread_local std::vector<double> panel;
  panel.resize(kMR * kk);
  for (std::size_t i0 = 0; i0 < m_main; i0 += kMR) {
    pack_a_panel(ap + i0 * si, si, st, kk, panel.data());
    double* c = cp + i0 * n;
    for (std::size_t j0 = 0; j0 < n_main; j0 += kNR)
      tile_4x16(panel.data(), bp + j0, n, c + j0, n, kk);
    if (n_main < n)
      edge_update(panel.data(), 1, kMR, bp + n_main, n, c + n_main, n, kMR,
                  n - n_main, kk);
  }
  if (m_main < m)
    edge_update(ap + m_main * si, si, st, bp, n, cp + m_main * n, n,
                m - m_main, n, kk);
}

}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  c_gemm_calls().add();
  GNFV_ASSERT(a.cols() == b.rows(), "gemm: inner dimension mismatch");
  GNFV_ASSERT(c.rows() == a.rows() && c.cols() == b.cols(),
              "gemm: output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  double* cd = c.data();
  if (!accumulate) {
    for (std::size_t i = 0; i < m * n; ++i) cd[i] = 0.0;
  }
  // B is already reduction-major (k×n); A rows are walked t-contiguously.
  gemm_core(a.data(), /*si=*/k, /*st=*/1, b.data(), cd, m, n, k);
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, bool accumulate) {
  c_gemm_calls().add();
  GNFV_ASSERT(a.rows() == b.rows(), "gemm_tn: batch dimension mismatch");
  GNFV_ASSERT(c.rows() == a.cols() && c.cols() == b.cols(),
              "gemm_tn: output shape mismatch");
  const std::size_t kk = a.rows(), m = a.cols(), n = b.cols();
  double* cd = c.data();
  if (!accumulate) {
    for (std::size_t i = 0; i < m * n; ++i) cd[i] = 0.0;
  }
  // Aᵀ: element (ii, t) lives at ad[t·m + ii] — si=1, st=m. The batch
  // index t advances in increasing order for every output element, so the
  // rank-1 updates land exactly as per-sample accumulate_outer would.
  gemm_core(a.data(), /*si=*/1, /*st=*/m, b.data(), cd, m, n, kk);
}

void gemm_nt(const Matrix& a, const Matrix& b, Matrix& c,
             std::span<const double> bias) {
  c_gemm_calls().add();
  GNFV_ASSERT(a.cols() == b.cols(), "gemm_nt: inner dimension mismatch");
  GNFV_ASSERT(c.rows() == a.rows() && c.cols() == b.rows(),
              "gemm_nt: output shape mismatch");
  GNFV_ASSERT(bias.empty() || bias.size() == b.rows(),
              "gemm_nt: bias dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  const double* bd = b.data();
  double* cd = c.data();
  // Dot-product form would serialize each output element on a k-long add
  // chain (add-latency bound, no legal SIMD over the reduction). Instead
  // pack Bᵀ once — O(k·n) against O(m·k·n) math — and run the tiled core;
  // each element still accumulates k in increasing order, seeded with its
  // bias exactly like matvec seeds its accumulator.
  static thread_local std::vector<double> packed;
  packed.resize(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    const double* brow = bd + j * k;
    for (std::size_t t = 0; t < k; ++t) packed[t * n + j] = brow[t];
  }
  for (std::size_t i = 0; i < m; ++i) {
    double* crow = cd + i * n;
    if (bias.empty()) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0;
    } else {
      for (std::size_t j = 0; j < n; ++j) crow[j] = bias[j];
    }
  }
  gemm_core(a.data(), /*si=*/k, /*st=*/1, packed.data(), cd, m, n, k);
}

void add_col_sums(const Matrix& a, std::span<double> y) {
  GNFV_ASSERT(y.size() == a.cols(), "add_col_sums: dimension mismatch");
  const double* ad = a.data();
  const std::size_t n = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* row = ad + i * n;
    for (std::size_t j = 0; j < n; ++j) y[j] += row[j];
  }
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  GNFV_ASSERT(x.size() == y.size(), "axpy: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm2(std::span<const double> x) {
  return std::sqrt(dot(x, x));
}

}  // namespace greennfv::rl
