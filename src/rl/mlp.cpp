#include "rl/mlp.hpp"

#include <cmath>

namespace greennfv::rl {

std::string to_string(Activation act) {
  switch (act) {
    case Activation::kLinear:  return "linear";
    case Activation::kRelu:    return "relu";
    case Activation::kTanh:    return "tanh";
    case Activation::kSigmoid: return "sigmoid";
  }
  return "?";
}

void Mlp::Gradients::zero() {
  for (auto& m : dw) m.fill(0.0);
  for (auto& b : db) b.assign(b.size(), 0.0);
}

void Mlp::Gradients::add(const Gradients& other) {
  GNFV_REQUIRE(dw.size() == other.dw.size(), "Gradients::add shape mismatch");
  for (std::size_t l = 0; l < dw.size(); ++l) {
    axpy(1.0, other.dw[l].flat(), dw[l].flat());
    axpy(1.0, other.db[l], db[l]);
  }
}

void Mlp::Gradients::scale(double s) {
  for (auto& m : dw)
    for (double& x : m.flat()) x *= s;
  for (auto& b : db)
    for (double& x : b) x *= s;
}

Mlp::Mlp(std::size_t input_dim, const std::vector<LayerSpec>& layers,
         Rng& rng)
    : input_dim_(input_dim) {
  GNFV_REQUIRE(input_dim > 0, "Mlp: zero input dim");
  GNFV_REQUIRE(!layers.empty(), "Mlp: no layers");
  std::size_t fan_in = input_dim;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    GNFV_REQUIRE(layers[l].units > 0, "Mlp: zero-unit layer");
    Matrix w(layers[l].units, fan_in);
    if (l + 1 == layers.size()) {
      w.uniform_init(rng, 3e-3);  // DDPG's small output init
    } else {
      w.xavier_init(rng);
    }
    weights_.push_back(std::move(w));
    biases_.emplace_back(layers[l].units, 0.0);
    activations_.push_back(layers[l].activation);
    fan_in = layers[l].units;
  }
}

std::size_t Mlp::output_dim() const { return biases_.back().size(); }

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l)
    n += weights_[l].size() + biases_[l].size();
  return n;
}

void Mlp::apply_activation(Activation act, std::span<double> v) {
  switch (act) {
    case Activation::kLinear:
      return;
    case Activation::kRelu:
      for (double& x : v) x = x > 0.0 ? x : 0.0;
      return;
    case Activation::kTanh:
      for (double& x : v) x = std::tanh(x);
      return;
    case Activation::kSigmoid:
      for (double& x : v) x = 1.0 / (1.0 + std::exp(-x));
      return;
  }
}

double Mlp::activation_grad(Activation act, double pre, double post) {
  switch (act) {
    case Activation::kLinear:  return 1.0;
    case Activation::kRelu:    return pre > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:    return 1.0 - post * post;
    case Activation::kSigmoid: return post * (1.0 - post);
  }
  return 1.0;
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  Workspace ws;
  return forward(input, ws);
}

void Mlp::run_forward(std::span<const double> input, Workspace& ws,
                      bool fast) const {
  GNFV_REQUIRE(input.size() == input_dim_, "Mlp::forward: input dim");
  ws.input.assign(input.begin(), input.end());
  ws.pre.resize(weights_.size());
  ws.post.resize(weights_.size());

  std::span<const double> x = ws.input;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    ws.pre[l].assign(weights_[l].rows(), 0.0);
    (fast ? matvec4 : matvec)(weights_[l], x, biases_[l], ws.pre[l]);
    ws.post[l] = ws.pre[l];
    apply_activation(activations_[l], ws.post[l]);
    x = ws.post[l];
  }
}

std::vector<double> Mlp::forward(std::span<const double> input,
                                 Workspace& ws) const {
  run_forward(input, ws, /*fast=*/false);
  return ws.post.back();
}

void Mlp::forward_into(std::span<const double> input, Workspace& ws,
                       std::span<double> out) const {
  GNFV_REQUIRE(out.size() == output_dim(), "Mlp::forward_into: output dim");
  run_forward(input, ws, /*fast=*/true);
  const std::vector<double>& y = ws.post.back();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = y[i];
}

const Matrix& Mlp::forward_batch(BatchWorkspace& ws) const {
  GNFV_REQUIRE(ws.input.cols() == input_dim_,
               "Mlp::forward_batch: input dim");
  GNFV_REQUIRE(ws.input.rows() > 0, "Mlp::forward_batch: empty batch");
  const std::size_t n = ws.input.rows();
  ws.pre.resize(weights_.size());
  ws.post.resize(weights_.size());

  const Matrix* x = &ws.input;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    ws.pre[l].resize(n, weights_[l].rows());
    gemm_nt(*x, weights_[l], ws.pre[l], biases_[l]);
    ws.post[l] = ws.pre[l];
    apply_activation(activations_[l], ws.post[l].flat());
    x = &ws.post[l];
  }
  return ws.post.back();
}

const Matrix& Mlp::forward_batch(const Matrix& x, BatchWorkspace& ws) const {
  ws.input = x;
  return forward_batch(ws);
}

std::vector<double> Mlp::backward(std::span<const double> output_grad,
                                  const Workspace& ws,
                                  Gradients& grads) const {
  GNFV_REQUIRE(output_grad.size() == output_dim(), "Mlp::backward: dim");
  GNFV_REQUIRE(ws.pre.size() == weights_.size(),
               "Mlp::backward: stale workspace");
  GNFV_REQUIRE(grads.dw.size() == weights_.size(),
               "Mlp::backward: gradient shape");

  std::vector<double> delta(output_grad.begin(), output_grad.end());
  for (std::size_t li = weights_.size(); li-- > 0;) {
    // delta currently holds dL/d(post[li]); convert to dL/d(pre[li]).
    for (std::size_t u = 0; u < delta.size(); ++u) {
      delta[u] *= activation_grad(activations_[li], ws.pre[li][u],
                                  ws.post[li][u]);
    }
    const std::span<const double> layer_input =
        li == 0 ? std::span<const double>(ws.input)
                : std::span<const double>(ws.post[li - 1]);
    accumulate_outer(grads.dw[li], delta, layer_input);
    axpy(1.0, delta, grads.db[li]);

    std::vector<double> prev_grad(layer_input.size(), 0.0);
    matvec_transpose(weights_[li], delta, prev_grad);
    delta = std::move(prev_grad);
  }
  return delta;  // dL/d(input)
}

const Matrix& Mlp::backward_batch(const Matrix& output_grad,
                                  BatchWorkspace& ws,
                                  Gradients& grads) const {
  const std::size_t n = ws.input.rows();
  GNFV_REQUIRE(output_grad.rows() == n &&
                   output_grad.cols() == output_dim(),
               "Mlp::backward_batch: dY shape");
  GNFV_REQUIRE(ws.pre.size() == weights_.size(),
               "Mlp::backward_batch: stale workspace");
  GNFV_REQUIRE(grads.dw.size() == weights_.size(),
               "Mlp::backward_batch: gradient shape");
  ws.delta.resize(weights_.size());
  ws.dx.resize(n, input_dim_);

  for (std::size_t li = weights_.size(); li-- > 0;) {
    Matrix& delta = ws.delta[li];
    if (li + 1 == weights_.size()) {
      delta = output_grad;
    }  // else: filled by the gemm of layer li+1 below.
    // delta holds dL/d(post[li]); convert to dL/d(pre[li]).
    {
      auto d = delta.flat();
      const auto pre = ws.pre[li].flat();
      const auto post = ws.post[li].flat();
      for (std::size_t u = 0; u < d.size(); ++u)
        d[u] *= activation_grad(activations_[li], pre[u], post[u]);
    }
    const Matrix& layer_input = li == 0 ? ws.input : ws.post[li - 1];
    gemm_tn(delta, layer_input, grads.dw[li], /*accumulate=*/false);
    std::vector<double>& db = grads.db[li];
    db.assign(db.size(), 0.0);
    add_col_sums(delta, db);

    Matrix& downstream = li == 0 ? ws.dx : ws.delta[li - 1];
    downstream.resize(n, weights_[li].cols());
    gemm(delta, weights_[li], downstream);
  }
  return ws.dx;
}

Mlp::Gradients Mlp::make_gradients() const {
  Gradients grads;
  grads.dw.reserve(weights_.size());
  grads.db.reserve(biases_.size());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    grads.dw.emplace_back(weights_[l].rows(), weights_[l].cols());
    grads.db.emplace_back(biases_[l].size(), 0.0);
  }
  return grads;
}

std::vector<double> Mlp::parameters() const {
  std::vector<double> flat;
  flat.reserve(num_parameters());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    flat.insert(flat.end(), weights_[l].flat().begin(),
                weights_[l].flat().end());
    flat.insert(flat.end(), biases_[l].begin(), biases_[l].end());
  }
  return flat;
}

void Mlp::set_parameters(std::span<const double> params) {
  GNFV_REQUIRE(params.size() == num_parameters(),
               "Mlp::set_parameters: size mismatch");
  std::size_t cursor = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    for (double& w : weights_[l].flat()) w = params[cursor++];
    for (double& b : biases_[l]) b = params[cursor++];
  }
}

void Mlp::soft_update_from(const Mlp& src, double tau) {
  GNFV_REQUIRE(num_parameters() == src.num_parameters(),
               "soft_update: incompatible networks");
  GNFV_REQUIRE(tau >= 0.0 && tau <= 1.0, "soft_update: tau out of range");
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    auto dst_w = weights_[l].flat();
    auto src_w = src.weights_[l].flat();
    for (std::size_t i = 0; i < dst_w.size(); ++i)
      dst_w[i] = tau * src_w[i] + (1.0 - tau) * dst_w[i];
    for (std::size_t i = 0; i < biases_[l].size(); ++i)
      biases_[l][i] = tau * src.biases_[l][i] + (1.0 - tau) * biases_[l][i];
  }
}

void Mlp::copy_from(const Mlp& src) { soft_update_from(src, 1.0); }

AdamOptimizer::AdamOptimizer(const Mlp& model, double lr, double beta1,
                             double beta2, double epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  GNFV_REQUIRE(lr > 0.0, "Adam: lr must be positive");
  for (std::size_t l = 0; l < model.weights_.size(); ++l) {
    m_w_.emplace_back(model.weights_[l].rows(), model.weights_[l].cols());
    v_w_.emplace_back(model.weights_[l].rows(), model.weights_[l].cols());
    m_b_.emplace_back(model.biases_[l].size(), 0.0);
    v_b_.emplace_back(model.biases_[l].size(), 0.0);
  }
}

void AdamOptimizer::step(Mlp& model, const Mlp::Gradients& grads) {
  GNFV_REQUIRE(grads.dw.size() == model.weights_.size(),
               "Adam: gradient shape mismatch");
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));

  const auto update = [&](double& param, double grad, double& m, double& v) {
    m = beta1_ * m + (1.0 - beta1_) * grad;
    v = beta2_ * v + (1.0 - beta2_) * grad * grad;
    const double m_hat = m / bias1;
    const double v_hat = v / bias2;
    param -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
  };

  for (std::size_t l = 0; l < model.weights_.size(); ++l) {
    auto w = model.weights_[l].flat();
    auto gw = grads.dw[l].flat();
    auto mw = m_w_[l].flat();
    auto vw = v_w_[l].flat();
    for (std::size_t i = 0; i < w.size(); ++i)
      update(w[i], gw[i], mw[i], vw[i]);
    auto& b = model.biases_[l];
    const auto& gb = grads.db[l];
    auto& mb = m_b_[l];
    auto& vb = v_b_[l];
    for (std::size_t i = 0; i < b.size(); ++i)
      update(b[i], gb[i], mb[i], vb[i]);
  }
}

}  // namespace greennfv::rl
