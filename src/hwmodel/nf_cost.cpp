#include "hwmodel/nf_cost.hpp"

#include <stdexcept>

#include "common/units.hpp"

namespace greennfv::hwmodel {

namespace nf_catalog {

NfCostProfile firewall() {
  return NfCostProfile{"firewall", 120.0, 0.0, 4.0, 256 * units::kKiB};
}

NfCostProfile nat() {
  return NfCostProfile{"nat", 150.0, 0.0, 5.0, 512 * units::kKiB};
}

NfCostProfile router() {
  return NfCostProfile{"router", 180.0, 0.0, 6.0, 1 * units::kMiB};
}

NfCostProfile ids() {
  // DPI cost is dominated by the per-byte automaton walk; ~2 cycles/byte is
  // the published ballpark for pattern-matching IDS data planes.
  return NfCostProfile{"ids", 450.0, 2.0, 10.0, 2 * units::kMiB};
}

NfCostProfile tunnel_gw() {
  return NfCostProfile{"tunnel_gw", 250.0, 0.18, 7.0, 128 * units::kKiB};
}

NfCostProfile epc() {
  return NfCostProfile{"epc", 800.0, 0.30, 16.0, 4 * units::kMiB};
}

NfCostProfile flow_monitor() {
  return NfCostProfile{"flow_monitor", 90.0, 0.0, 3.0, 768 * units::kKiB};
}

NfCostProfile by_name(const std::string& name) {
  if (name == "firewall") return firewall();
  if (name == "nat") return nat();
  if (name == "router") return router();
  if (name == "ids") return ids();
  if (name == "tunnel_gw") return tunnel_gw();
  if (name == "epc") return epc();
  if (name == "flow_monitor") return flow_monitor();
  throw std::invalid_argument("unknown NF profile: " + name);
}

std::vector<std::string> names() {
  return {"firewall", "nat",       "router",      "ids",
          "tunnel_gw", "epc",      "flow_monitor"};
}

}  // namespace nf_catalog

std::uint64_t total_state_bytes(const std::vector<NfCostProfile>& nfs) {
  std::uint64_t total = 0;
  for (const auto& nf : nfs) total += nf.state_bytes;
  return total;
}

}  // namespace greennfv::hwmodel
