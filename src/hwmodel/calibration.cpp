#include "hwmodel/calibration.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace greennfv::hwmodel {

PowerSample PowerMeter::measure(double utilization, double freq_ghz) {
  PowerSample sample;
  sample.utilization = utilization;
  sample.watts = model_.power_w(utilization, freq_ghz) +
                 rng_.normal(0.0, noise_w_);
  return sample;
}

std::vector<PowerSample> PowerMeter::calibration_sweep(int count) {
  GNFV_REQUIRE(count >= 2, "calibration sweep needs >= 2 points");
  std::vector<PowerSample> samples;
  samples.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double u = static_cast<double>(i) / (count - 1);
    samples.push_back(measure(u, model_.spec().fmax_ghz));
  }
  return samples;
}

namespace {

double sse_for_h(const NodeSpec& spec, double h,
                 const std::vector<PowerSample>& samples) {
  const PowerModel model = PowerModel(spec).with_h(h);
  double sse = 0.0;
  for (const auto& s : samples) {
    const double err = model.power_w(s.utilization) - s.watts;
    sse += err * err;
  }
  return sse;
}

}  // namespace

CalibrationResult fit_fan_h(const NodeSpec& spec,
                            const std::vector<PowerSample>& samples,
                            double h_lo, double h_hi, double tolerance) {
  GNFV_REQUIRE(!samples.empty(), "fit_fan_h: no samples");
  GNFV_REQUIRE(h_lo < h_hi, "fit_fan_h: inverted bracket");

  // Golden-section search on the (unimodal) SSE.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = h_lo;
  double b = h_hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = sse_for_h(spec, c, samples);
  double fd = sse_for_h(spec, d, samples);
  int evals = 2;
  while (b - a > tolerance) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = sse_for_h(spec, c, samples);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = sse_for_h(spec, d, samples);
    }
    ++evals;
  }

  CalibrationResult result;
  result.h = (a + b) / 2.0;
  result.rmse_w = std::sqrt(sse_for_h(spec, result.h, samples) /
                            static_cast<double>(samples.size()));
  result.evaluations = evals + 1;
  return result;
}

}  // namespace greennfv::hwmodel
