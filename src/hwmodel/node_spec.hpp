#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

/// \file node_spec.hpp
/// Static description of one NFV host. Defaults mirror the paper's testbed:
/// Intel Xeon E5-2620 v4 (16 cores across two sockets, DVFS 1.2-2.1 GHz,
/// 20 MB / 20-way LLC with ~10% reserved for DDIO), 64 GB RAM, and a
/// 10 GbE Intel X540-AT2 NIC. Power constants follow the Fan-Weber-Barroso
/// model the paper adopts (Eq. 4), with the calibration parameter `h`
/// fitted the same way the authors fit against their Yokogawa WT210 meter
/// (see hwmodel/calibration.hpp).

namespace greennfv::hwmodel {

struct NodeSpec {
  // --- CPU ---------------------------------------------------------------
  int total_cores = 16;
  double fmin_ghz = 1.2;
  double fmax_ghz = 2.1;
  double fstep_ghz = 0.1;

  // --- Memory hierarchy ----------------------------------------------------
  std::uint64_t llc_bytes = 20ull * units::kMiB;
  int llc_ways = 20;
  /// Ways reserved for Data Direct I/O (Intel DDIO dedicates ~10% of LLC
  /// to inbound DMA).
  int ddio_ways = 2;
  /// DRAM access latency. Constant in *time*; the cycle cost therefore
  /// scales with core frequency, which is what makes high frequencies pay
  /// diminishing returns on memory-bound NFs (paper Fig. 2's non-linearity).
  double mem_latency_ns = 85.0;
  /// Cache line size used to convert packet bytes to memory references.
  std::uint32_t cache_line_bytes = 64;

  // --- NIC -----------------------------------------------------------------
  double line_rate_gbps = 10.0;
  /// Per-port hardware descriptor ring limit for the DMA buffer knob.
  double max_dma_buffer_mib = 48.0;

  // --- Power (Eq. 4 of the paper) -------------------------------------------
  double p_idle_w = 60.0;
  double p_max_w = 330.0;
  /// Draw while power-gated (suspend-to-RAM keeps the BMC + DIMM refresh
  /// alive — single-digit watts on server hardware). Only the fleet
  /// orchestrator's node power-state machine uses this; a node hosting
  /// chains never sleeps.
  double p_sleep_w = 8.0;
  /// Resume latency out of the sleep state. Charged as downtime against
  /// the chain whose placement woke the node (SLA accounting), plus
  /// p_idle_w draw for the duration.
  double wake_latency_s = 3.0;
  /// Fan-model calibration parameter `h` (paper fits it against a Yokogawa
  /// WT210; we fit it against the synthetic meter in calibration.cpp).
  double fan_h = 1.4;
  /// Fraction of dynamic power that does not scale with frequency
  /// (uncore, leakage).
  double static_fraction = 0.10;
  /// Exponent of the frequency term of dynamic power (f * V^2 with voltage
  /// roughly linear in f gives ~3).
  double freq_power_exponent = 3.0;

  // --- Software-path constants ----------------------------------------------
  /// Fixed cycles for one ring hop (enqueue+dequeue bookkeeping, amortizable
  /// part excluded).
  double hop_cycles = 60.0;
  /// Per-wakeup cost (NF scheduling, IPC, call, cache warmup) amortized
  /// over a batch. ONVM hands packets between processes, so this is large —
  /// the lever behind the paper's Fig. 3 batching win and a main reason the
  /// untuned batch=2 baseline underperforms.
  double per_call_cycles = 4000.0;
  /// Goodput floor under overload: livelock cannot push goodput below this
  /// fraction of the service rate (RX drops early and cheaply).
  double livelock_floor = 0.3;
  /// Compulsory LLC miss floor and contention ceiling for the miss model.
  double miss_floor = 0.02;
  double miss_ceiling = 0.85;
  /// Extra miss ratio suffered when the LLC is *unpartitioned* and several
  /// chains (plus the OS) conflict in it — the effect CAT removes and the
  /// paper's Fig. 1 measures.
  double contention_miss = 0.22;
  /// Cores burned by the ONVM manager's RX/TX threads ("running on a
  /// dedicated core" per §4.4).
  double controller_cores = 2.0;
  /// Receive-livelock exponent: goodput = service * (service/offered)^beta
  /// under overload (Mogul & Ramakrishnan-style collapse).
  double livelock_beta = 1.4;
  /// Fraction of packet cache lines actually touched by a typical NF.
  double pkt_touch_fraction = 0.5;
  /// Of the packet lines that spilled past DDIO to DRAM, the fraction whose
  /// read actually stalls the core (hardware prefetchers cover the rest of
  /// the sequential packet read).
  double ddio_spill_touch = 0.25;
  /// Multiplier converting batch*pkt_bytes to LLC working-set footprint
  /// (packet data + mbuf metadata + stack).
  double batch_footprint_factor = 2.0;
  /// Minimum polling duty cycle in hybrid (callback+poll) mode; pure
  /// poll-mode drivers burn 100% duty regardless of load. Wakeup latency,
  /// timer ticks, and cache re-warming keep residency well above zero even
  /// on idle queues.
  double min_poll_duty = 0.25;

  /// Returns the DVFS ladder {fmin, fmin+step, ..., fmax}. Entries are
  /// rounded to 1 MHz so repeated float addition cannot push the top step
  /// past fmax.
  [[nodiscard]] std::vector<double> frequency_ladder_ghz() const {
    std::vector<double> ladder;
    const int steps =
        static_cast<int>((fmax_ghz - fmin_ghz) / fstep_ghz + 0.5);
    for (int i = 0; i <= steps; ++i) {
      const double f = fmin_ghz + i * fstep_ghz;
      ladder.push_back(static_cast<double>(static_cast<long long>(
                           f * 1000.0 + 0.5)) /
                       1000.0);
    }
    return ladder;
  }

  [[nodiscard]] std::uint64_t bytes_per_way() const {
    return llc_bytes / static_cast<std::uint64_t>(llc_ways);
  }

  [[nodiscard]] std::uint64_t ddio_bytes() const {
    return bytes_per_way() * static_cast<std::uint64_t>(ddio_ways);
  }

  /// LLC capacity available to CAT classes (total minus the DDIO ways).
  [[nodiscard]] std::uint64_t allocatable_llc_bytes() const {
    return llc_bytes - ddio_bytes();
  }
};

}  // namespace greennfv::hwmodel
