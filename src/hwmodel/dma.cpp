#include "hwmodel/dma.hpp"

#include <algorithm>

#include "common/math_util.hpp"
#include "common/units.hpp"

namespace greennfv::hwmodel {

double DmaModel::absorption(std::uint64_t buffer_bytes,
                            std::uint32_t pkt_bytes,
                            double poll_interval_s) const {
  if (buffer_bytes == 0) return 0.0;
  // The buffer backs a descriptor ring of fixed-size mbufs (2 KB in DPDK),
  // so its capacity in *packets* is what matters — a 1 MiB buffer holds
  // only 512 slots whether frames are 64 B or 1518 B. The ring must cover
  // several poll intervals of line-rate arrivals to ride out scheduling
  // jitter; small frames arrive at far higher packet rates and therefore
  // need far more slots for the same absorption (paper Fig. 4's gap
  // between the 64 B and 1518 B curves).
  const double slots =
      static_cast<double>(buffer_bytes) / static_cast<double>(kMbufBytes);
  const double line_pps =
      units::gbps_to_bps(spec_.line_rate_gbps) /
      units::wire_bits_per_frame(pkt_bytes);
  const double burst_pkts = line_pps * poll_interval_s;
  return math_util::saturating(slots, 4.0 * burst_pkts);
}

std::uint32_t DmaModel::max_batch(std::uint64_t buffer_bytes,
                                  std::uint32_t pkt_bytes) const {
  (void)pkt_bytes;
  const std::uint64_t slots = buffer_bytes / kMbufBytes;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(slots, 1u << 20));
}

}  // namespace greennfv::hwmodel
