#include "hwmodel/cache.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/math_util.hpp"

namespace greennfv::hwmodel {

CacheBehaviour CacheModel::evaluate(const CacheDemand& demand,
                                    std::uint64_t allocated_bytes) const {
  CacheBehaviour out;
  out.working_set_bytes = demand.state_bytes + demand.packet_window_bytes;

  // Guard: a CLOS always owns at least one way in hardware.
  const std::uint64_t allocation =
      std::max<std::uint64_t>(allocated_bytes, spec_.bytes_per_way());

  const double ws = static_cast<double>(out.working_set_bytes);
  const double alloc = static_cast<double>(allocation);
  // Pressure = how far the working set overshoots the allocation.
  const double pressure = std::max(0.0, ws / alloc - 1.0);
  const double growth = math_util::saturating(pressure, 1.0);
  // Conflict misses from unmanaged sharing raise the floor; CAT's whole
  // value proposition is removing this term.
  const double floor =
      std::min(spec_.miss_ceiling,
               spec_.miss_floor +
                   (demand.shared_unpartitioned ? spec_.contention_miss
                                                : 0.0));
  out.miss_ratio = floor + (spec_.miss_ceiling - floor) * growth;

  // DDIO: inbound DMA lands in the dedicated ways. Once the descriptor
  // ring outgrows them the overflow is written to DRAM and the first
  // packet read misses (the Tootoonchian/ResQ "leaky DMA" effect).
  const double ddio_capacity = static_cast<double>(spec_.ddio_bytes());
  const double dma = static_cast<double>(demand.dma_buffer_bytes);
  out.ddio_hit = dma <= ddio_capacity || dma <= 0.0
                     ? 1.0
                     : math_util::clamp(ddio_capacity / dma, 0.0, 1.0);
  return out;
}

std::uint64_t CacheModel::contended_share(double demand_share) const {
  const double share = math_util::clamp(demand_share, 0.0, 1.0);
  const double effective = static_cast<double>(spec_.allocatable_llc_bytes()) *
                           share * (1.0 - kContentionWaste);
  return std::max<std::uint64_t>(static_cast<std::uint64_t>(effective),
                                 spec_.bytes_per_way());
}

}  // namespace greennfv::hwmodel
