#include "hwmodel/cat.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/assert.hpp"

namespace greennfv::hwmodel {

CatAllocator::CatAllocator(const NodeSpec& spec)
    : allocatable_ways_(spec.llc_ways - spec.ddio_ways),
      ddio_ways_(spec.ddio_ways),
      bytes_per_way_(spec.bytes_per_way()) {
  GNFV_REQUIRE(allocatable_ways_ > 0, "CAT: no allocatable ways");
}

void CatAllocator::set_clos(ClosId clos, int first_way, int way_count) {
  if (way_count <= 0)
    throw std::invalid_argument("CAT: CBM must contain at least one way");
  if (first_way < 0 || first_way + way_count > allocatable_ways_)
    throw std::invalid_argument("CAT: CBM exceeds allocatable ways");
  clos_[clos] = Mask{first_way, way_count};
}

std::vector<int> CatAllocator::partition(const std::vector<double>& fractions) {
  if (fractions.empty())
    throw std::invalid_argument("CAT: partition needs at least one fraction");
  for (const double f : fractions)
    if (f < 0.0)
      throw std::invalid_argument("CAT: fractions must be non-negative");
  const double total = std::accumulate(fractions.begin(), fractions.end(), 0.0);
  if (total <= 0.0)
    throw std::invalid_argument("CAT: fractions sum to zero");

  const auto n = static_cast<int>(fractions.size());
  if (n > allocatable_ways_)
    throw std::invalid_argument("CAT: more classes than ways");

  // Largest-remainder apportionment with a 1-way floor per class.
  std::vector<int> ways(static_cast<std::size_t>(n), 1);
  int remaining = allocatable_ways_ - n;
  std::vector<double> remainders(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double ideal =
        fractions[static_cast<std::size_t>(i)] / total * allocatable_ways_;
    const int extra = std::max(
        0, std::min(remaining, static_cast<int>(ideal) - 1));
    ways[static_cast<std::size_t>(i)] += extra;
    remaining -= extra;
    remainders[static_cast<std::size_t>(i)] =
        ideal - static_cast<double>(ways[static_cast<std::size_t>(i)]);
  }
  while (remaining > 0) {
    const auto it = std::max_element(remainders.begin(), remainders.end());
    const auto idx = static_cast<std::size_t>(it - remainders.begin());
    ways[idx] += 1;
    remainders[idx] -= 1.0;
    --remaining;
  }

  clos_.clear();
  int cursor = 0;
  for (int i = 0; i < n; ++i) {
    set_clos(i, cursor, ways[static_cast<std::size_t>(i)]);
    cursor += ways[static_cast<std::size_t>(i)];
  }
  return ways;
}

void CatAllocator::reset() { clos_.clear(); }

bool CatAllocator::has_clos(ClosId clos) const {
  return clos_.count(clos) != 0;
}

int CatAllocator::way_count(ClosId clos) const {
  const auto it = clos_.find(clos);
  GNFV_REQUIRE(it != clos_.end(), "CAT: unknown CLOS");
  return it->second.way_count;
}

std::uint64_t CatAllocator::bytes(ClosId clos) const {
  return static_cast<std::uint64_t>(way_count(clos)) * bytes_per_way_;
}

std::uint64_t CatAllocator::cbm(ClosId clos) const {
  const auto it = clos_.find(clos);
  GNFV_REQUIRE(it != clos_.end(), "CAT: unknown CLOS");
  std::uint64_t mask = 0;
  for (int w = 0; w < it->second.way_count; ++w) {
    mask |= 1ull << (ddio_ways_ + it->second.first_way + w);
  }
  return mask;
}

}  // namespace greennfv::hwmodel
