#pragma once

#include <cstdint>
#include <vector>

#include "hwmodel/cache.hpp"
#include "hwmodel/dma.hpp"
#include "hwmodel/nf_cost.hpp"
#include "hwmodel/node_spec.hpp"

/// \file cost_model.hpp
/// The analytic throughput model: maps (chain NFs, offered load, resource
/// knobs) to cycles/packet, service rate, goodput, and drop behaviour.
///
/// Model structure (each term is individually exercised by the paper's
/// micro-benchmarks):
///
///   cycles/pkt = Σ_nf [ base + cpb·bytes + refs·miss·latency(f) ]
///              + hops·(hop + call/batch)                      (batching, Fig 3)
///              + pkt_lines·(1 - ddio_hit)·latency(f)          (DDIO, Fig 4)
///
///   miss      = capacity curve of WS vs CAT allocation        (LLC, Fig 1)
///   latency(f)= mem_latency_ns · f  — constant in time, so higher
///               frequency pays more *cycles* per miss          (DVFS, Fig 2)
///
///   service   = cores · f / cycles/pkt, capped by the DMA absorption limit
///   goodput   = offered when underloaded; receive-livelock collapse
///               service·(service/offered)^β when overloaded.

namespace greennfv::hwmodel {

/// Offered load presented to one chain.
struct ChainWorkload {
  double offered_pps = 0.0;
  std::uint32_t pkt_bytes = 1024;
};

/// Resolved resource assignment for one chain (LLC already in bytes; the
/// NodeModel translates the CAT fraction knob before calling in here).
struct ChainResources {
  double cores = 1.0;
  double freq_ghz = 2.1;
  std::uint64_t llc_bytes = 1ull << 20;
  std::uint64_t dma_bytes = 2ull << 20;
  std::uint32_t batch = 32;
  /// Pure poll-mode burns full duty on the allocated cores; hybrid
  /// (callback+poll, what GreenNFV implements) lets idle NFs sleep.
  bool poll_mode = false;
  /// LLC not partitioned by CAT (baseline mode): conflict misses apply.
  bool shared_llc = false;
};

/// Everything the model can say about one chain at steady state.
struct ChainEvaluation {
  double cycles_per_pkt = 0.0;
  double service_pps = 0.0;     ///< capacity at these knobs
  double goodput_pps = 0.0;     ///< delivered packets after drops
  double drop_pps = 0.0;
  double throughput_gbps = 0.0; ///< payload bits delivered
  double wire_gbps = 0.0;       ///< incl. Ethernet preamble+IFG
  double miss_ratio = 0.0;
  double misses_per_pkt = 0.0;
  double ddio_hit = 1.0;
  double busy_cores = 0.0;      ///< cores actually burning cycles
  double capacity_utilization = 0.0;  ///< goodput / service
  std::uint64_t working_set_bytes = 0;
  /// Mean packet sojourn time: batch-assembly wait + service + M/M/1-style
  /// queueing delay. The latency face of the batching trade-off — large
  /// batches buy throughput (Fig. 3) but add assembly delay, the constraint
  /// the delay-aware related work (Qu et al., Kar et al.) optimizes.
  double mean_latency_us = 0.0;
};

class CostModel {
 public:
  explicit CostModel(const NodeSpec& spec)
      : spec_(spec), cache_(spec), dma_(spec) {}

  /// Steady-state evaluation of one chain.
  [[nodiscard]] ChainEvaluation evaluate_chain(
      const std::vector<NfCostProfile>& nfs, const ChainWorkload& load,
      const ChainResources& res) const;

  /// The cache demand a chain presents (exposed for NodeModel's
  /// contention bookkeeping).
  [[nodiscard]] CacheDemand demand_of(const std::vector<NfCostProfile>& nfs,
                                      const ChainWorkload& load,
                                      const ChainResources& res) const;

  [[nodiscard]] const NodeSpec& spec() const { return spec_; }
  [[nodiscard]] const CacheModel& cache() const { return cache_; }
  [[nodiscard]] const DmaModel& dma() const { return dma_; }

 private:
  NodeSpec spec_;
  CacheModel cache_;
  DmaModel dma_;
};

}  // namespace greennfv::hwmodel
