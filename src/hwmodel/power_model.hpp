#pragma once

#include "hwmodel/node_spec.hpp"

/// \file power_model.hpp
/// The paper's power model (Eq. 4, from Fan, Weber & Barroso, ISCA'07):
///
///     P(u) = (Pmax - Pidle) * (2u - u^h) + Pidle
///
/// with `u` the CPU utilization and `h` a calibration parameter fitted
/// against an external power meter. We extend it with a frequency term:
/// the dynamic range (Pmax - Pidle) shrinks when cores run below fmax,
/// following  static_fraction + (1 - static_fraction) * (f/fmax)^gamma,
/// which is how DVFS actually buys energy savings. At f = fmax the model
/// reduces exactly to Eq. 4.

namespace greennfv::hwmodel {

class PowerModel {
 public:
  explicit PowerModel(const NodeSpec& spec) : spec_(spec) {}

  /// Eq. 4 evaluated at utilization `u` in [0,1], full frequency.
  [[nodiscard]] double power_w(double utilization) const;

  /// Eq. 4 with the dynamic range scaled for frequency `freq_ghz`.
  [[nodiscard]] double power_w(double utilization, double freq_ghz) const;

  /// Multiplier applied to (Pmax - Pidle) at a given frequency.
  [[nodiscard]] double frequency_scale(double freq_ghz) const;

  [[nodiscard]] double p_idle_w() const { return spec_.p_idle_w; }
  [[nodiscard]] double p_max_w() const { return spec_.p_max_w; }
  [[nodiscard]] double h() const { return spec_.fan_h; }

  /// Returns a copy with a different calibration parameter (used by the
  /// calibration fit).
  [[nodiscard]] PowerModel with_h(double h) const;

  [[nodiscard]] const NodeSpec& spec() const { return spec_; }

 private:
  NodeSpec spec_;
};

}  // namespace greennfv::hwmodel
