#pragma once

#include <vector>

#include "common/rng.hpp"
#include "hwmodel/power_model.hpp"

/// \file calibration.hpp
/// Fits the Fan-model calibration parameter `h` against power-meter samples,
/// exactly as the paper does with a Yokogawa WT210 ("We used the Yokogawa
/// WT210 power meter to measure the actual power to validate the model and
/// compute h"). In this reproduction the "meter" is a synthetic instrument
/// whose ground truth h is hidden from the fit; tests verify recovery.

namespace greennfv::hwmodel {

/// One (utilization, measured watts) observation.
struct PowerSample {
  double utilization = 0.0;
  double watts = 0.0;
};

/// A stand-in for the external wall-power meter: evaluates a ground-truth
/// Fan model and adds measurement noise.
class PowerMeter {
 public:
  PowerMeter(const NodeSpec& truth_spec, double noise_stddev_w, Rng rng)
      : model_(truth_spec), noise_w_(noise_stddev_w), rng_(rng) {}

  /// Samples the meter at the given operating point.
  [[nodiscard]] PowerSample measure(double utilization, double freq_ghz);

  /// Sweeps utilization over [0,1] in `count` steps at fmax, the standard
  /// calibration procedure.
  [[nodiscard]] std::vector<PowerSample> calibration_sweep(int count);

 private:
  PowerModel model_;
  double noise_w_;
  Rng rng_;
};

/// Result of fitting h.
struct CalibrationResult {
  double h = 1.0;
  double rmse_w = 0.0;   ///< root-mean-square error of the fit, in watts
  int evaluations = 0;   ///< model evaluations spent by the search
};

/// Least-squares fit of `h` by golden-section search over [h_lo, h_hi]
/// (the SSE in h is unimodal for this model family).
[[nodiscard]] CalibrationResult fit_fan_h(
    const NodeSpec& spec, const std::vector<PowerSample>& samples,
    double h_lo = 0.2, double h_hi = 3.0, double tolerance = 1e-5);

}  // namespace greennfv::hwmodel
