#include "hwmodel/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math_util.hpp"

namespace greennfv::hwmodel {

double PowerModel::power_w(double utilization) const {
  return power_w(utilization, spec_.fmax_ghz);
}

double PowerModel::frequency_scale(double freq_ghz) const {
  const double ratio =
      math_util::clamp(freq_ghz / spec_.fmax_ghz, spec_.fmin_ghz /
                                                      spec_.fmax_ghz, 1.0);
  return spec_.static_fraction +
         (1.0 - spec_.static_fraction) *
             std::pow(ratio, spec_.freq_power_exponent);
}

double PowerModel::power_w(double utilization, double freq_ghz) const {
  const double u = math_util::clamp(utilization, 0.0, 1.0);
  // Eq. 4: (Pmax - Pidle) * (2u - u^h) + Pidle. For h < 1 the shape term
  // dips below zero at low utilization — a known extrapolation artifact of
  // the Fan model — so the result is floored at zero watts (relevant only
  // while the calibration search explores extreme h values).
  const double shape = 2.0 * u - std::pow(u, spec_.fan_h);
  const double dynamic_range =
      (spec_.p_max_w - spec_.p_idle_w) * frequency_scale(freq_ghz);
  return std::max(0.0, spec_.p_idle_w + dynamic_range * shape);
}

PowerModel PowerModel::with_h(double h) const {
  NodeSpec spec = spec_;
  spec.fan_h = h;
  return PowerModel(spec);
}

}  // namespace greennfv::hwmodel
