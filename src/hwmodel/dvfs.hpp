#pragma once

#include <string>
#include <vector>

#include "hwmodel/node_spec.hpp"

/// \file dvfs.hpp
/// Dynamic voltage/frequency scaling model of the cpufrequtils interface the
/// paper drives: a ladder of P-states plus the standard Linux governors.
/// GreenNFV itself uses the `userspace` governor (direct frequency writes);
/// the comparison baselines use `performance` (max) and EE-Pstate drives the
/// ladder through thresholds.

namespace greennfv::hwmodel {

enum class Governor {
  kPerformance,  ///< pin to fmax (the paper's baseline setting)
  kPowersave,    ///< pin to fmin
  kUserspace,    ///< externally controlled (what GreenNFV uses)
  kOndemand,     ///< load-proportional selection
  kConservative  ///< load-proportional with single-step moves
};

[[nodiscard]] std::string to_string(Governor governor);

class DvfsController {
 public:
  explicit DvfsController(const NodeSpec& spec);

  /// Number of P-states on the ladder.
  [[nodiscard]] int num_pstates() const;

  /// Frequency of P-state `index` (0 = slowest).
  [[nodiscard]] double frequency_ghz(int index) const;

  /// Index of the highest P-state.
  [[nodiscard]] int max_pstate() const { return num_pstates() - 1; }

  /// Snaps an arbitrary frequency request to the nearest ladder entry and
  /// returns the snapped value (cpufrequtils behaviour for userspace).
  [[nodiscard]] double snap(double freq_ghz) const;

  /// Index of the ladder entry nearest to `freq_ghz`.
  [[nodiscard]] int pstate_of(double freq_ghz) const;

  /// Next slower available frequency (clamps at fmin) — Algorithm 1's
  /// "select nearest smaller core_frequency".
  [[nodiscard]] double step_down(double freq_ghz) const;

  /// Next faster available frequency (clamps at fmax).
  [[nodiscard]] double step_up(double freq_ghz) const;

  void set_governor(Governor governor) { governor_ = governor; }
  [[nodiscard]] Governor governor() const { return governor_; }

  /// Sets the userspace target; only honoured under Governor::kUserspace.
  void set_userspace_frequency(double freq_ghz);

  /// Frequency the governor would run at given the current load in [0,1].
  /// `previous_ghz` matters for kConservative's single-step behaviour.
  [[nodiscard]] double effective_frequency(double load,
                                           double previous_ghz) const;

  [[nodiscard]] const std::vector<double>& ladder() const { return ladder_; }

 private:
  std::vector<double> ladder_;
  Governor governor_ = Governor::kPerformance;
  double userspace_target_ghz_;
};

}  // namespace greennfv::hwmodel
