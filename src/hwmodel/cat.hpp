#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hwmodel/node_spec.hpp"

/// \file cat.hpp
/// Model of Intel Cache Allocation Technology as the paper uses it (pqos):
/// classes of service (CLOS) own capacity bitmasks (CBM) over LLC ways, and
/// workloads (chains) are associated with a CLOS. Masks must be contiguous
/// (hardware requirement) and non-empty. Way 0..ddio_ways-1 are reserved for
/// DDIO and cannot be assigned to a CLOS.

namespace greennfv::hwmodel {

using ClosId = int;

class CatAllocator {
 public:
  explicit CatAllocator(const NodeSpec& spec);

  /// Defines (or redefines) a CLOS with a contiguous way mask.
  /// `first_way`/`way_count` index into the allocatable (non-DDIO) ways.
  /// Throws std::invalid_argument on a malformed mask.
  void set_clos(ClosId clos, int first_way, int way_count);

  /// Convenience: partitions the allocatable ways among `fractions` CLOSes
  /// proportionally (fractions need not sum to 1; they are normalized).
  /// Every CLOS receives at least one way. Returns the assigned way counts.
  std::vector<int> partition(const std::vector<double>& fractions);

  /// Removes all CLOS definitions (back to unpartitioned LLC).
  void reset();

  [[nodiscard]] bool has_clos(ClosId clos) const;
  [[nodiscard]] int way_count(ClosId clos) const;
  [[nodiscard]] std::uint64_t bytes(ClosId clos) const;

  /// True when no CLOS is defined: all workloads contend for the full LLC.
  [[nodiscard]] bool unpartitioned() const { return clos_.empty(); }

  [[nodiscard]] int allocatable_ways() const { return allocatable_ways_; }
  [[nodiscard]] std::uint64_t bytes_per_way() const { return bytes_per_way_; }

  /// The capacity bitmask of a CLOS as the pqos tool would print it
  /// (bit i set = way i owned), including the DDIO offset.
  [[nodiscard]] std::uint64_t cbm(ClosId clos) const;

 private:
  struct Mask {
    int first_way = 0;
    int way_count = 0;
  };

  int allocatable_ways_;
  int ddio_ways_;
  std::uint64_t bytes_per_way_;
  std::map<ClosId, Mask> clos_;
};

}  // namespace greennfv::hwmodel
