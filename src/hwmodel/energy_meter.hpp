#pragma once

#include <cstdint>

/// \file energy_meter.hpp
/// RAPL-style energy accounting over virtual time: integrates power samples
/// into joules. The simulator calls `accumulate` once per simulation window;
/// episode energies (the paper's per-episode KJ numbers) come from reading
/// and resetting the counter.

namespace greennfv::hwmodel {

class EnergyMeter {
 public:
  /// Adds `power_w * duration_s` joules.
  void accumulate(double power_w, double duration_s);

  /// Total joules since construction (monotonic, like MSR_PKG_ENERGY_STATUS).
  [[nodiscard]] double total_joules() const { return total_j_; }

  /// Joules since the last call to `lap()`; resets the lap window.
  double lap();

  /// Joules accumulated in the current (unfinished) lap window.
  [[nodiscard]] double lap_joules() const { return total_j_ - lap_mark_j_; }

  /// Virtual seconds integrated so far.
  [[nodiscard]] double total_seconds() const { return total_s_; }

  /// Mean power over the whole accumulation (0 if no time elapsed).
  [[nodiscard]] double mean_power_w() const;

 private:
  double total_j_ = 0.0;
  double lap_mark_j_ = 0.0;
  double total_s_ = 0.0;
};

}  // namespace greennfv::hwmodel
