#pragma once

#include <vector>

#include "hwmodel/cat.hpp"
#include "hwmodel/cost_model.hpp"
#include "hwmodel/power_model.hpp"

/// \file node.hpp
/// NodeModel: the full analytic model of one NFV host. Takes the set of
/// chains deployed on the node — each with its NF list, offered load, and
/// resource knobs — and produces steady-state throughput, utilization, and
/// power, with per-chain attribution for the figures that report per-chain
/// energy (Fig. 1c, Fig. 4b).

namespace greennfv::hwmodel {

/// One chain's deployment on the node, in knob form (LLC as a CAT fraction).
struct ChainDeployment {
  std::vector<NfCostProfile> nfs;
  ChainWorkload workload;
  /// The five GreenNFV control knobs plus the scheduling mode.
  double cores = 1.0;
  double freq_ghz = 2.1;
  double llc_fraction = 0.25;  ///< share of allocatable (non-DDIO) LLC
  std::uint64_t dma_bytes = 2ull << 20;
  std::uint32_t batch = 32;
  bool poll_mode = false;
};

/// Per-chain results plus attributed power.
struct ChainReport {
  ChainEvaluation eval;
  double power_w = 0.0;        ///< this chain's attributed share incl. idle
  double energy_per_mpkt_j = 0.0;  ///< joules per million delivered packets
  std::uint64_t llc_bytes = 0; ///< resolved CAT allocation
};

/// Whole-node results for one steady-state window.
struct NodeEvaluation {
  std::vector<ChainReport> chains;
  double utilization = 0.0;     ///< busy cores / total cores
  double allocated_cores = 0.0;
  double power_w = 0.0;
  double total_goodput_gbps = 0.0;
  double total_offered_gbps = 0.0;
  double total_goodput_pps = 0.0;
  double total_drop_pps = 0.0;

  /// Energy for a window of `seconds` at this steady state.
  [[nodiscard]] double energy_j(double seconds) const {
    return power_w * seconds;
  }
};

class NodeModel {
 public:
  explicit NodeModel(const NodeSpec& spec = NodeSpec{});

  /// Evaluates the node at steady state.
  ///
  /// `use_cat` = true partitions the allocatable LLC by each chain's
  /// llc_fraction (GreenNFV's mode); false leaves the cache unpartitioned
  /// so chains receive contended, demand-proportional shares (the
  /// baseline's mode).
  [[nodiscard]] NodeEvaluation evaluate(
      const std::vector<ChainDeployment>& chains, bool use_cat = true) const;

  [[nodiscard]] const NodeSpec& spec() const { return spec_; }
  [[nodiscard]] const CostModel& cost_model() const { return cost_; }
  [[nodiscard]] const PowerModel& power_model() const { return power_; }

 private:
  NodeSpec spec_;
  CostModel cost_;
  PowerModel power_;
};

}  // namespace greennfv::hwmodel
