#include "hwmodel/dvfs.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math_util.hpp"

namespace greennfv::hwmodel {

std::string to_string(Governor governor) {
  switch (governor) {
    case Governor::kPerformance:  return "performance";
    case Governor::kPowersave:    return "powersave";
    case Governor::kUserspace:    return "userspace";
    case Governor::kOndemand:     return "ondemand";
    case Governor::kConservative: return "conservative";
  }
  return "?";
}

DvfsController::DvfsController(const NodeSpec& spec)
    : ladder_(spec.frequency_ladder_ghz()),
      userspace_target_ghz_(spec.fmin_ghz) {
  GNFV_REQUIRE(ladder_.size() >= 2, "DVFS ladder needs at least two steps");
}

int DvfsController::num_pstates() const {
  return static_cast<int>(ladder_.size());
}

double DvfsController::frequency_ghz(int index) const {
  GNFV_REQUIRE(index >= 0 && index < num_pstates(), "P-state out of range");
  return ladder_[static_cast<std::size_t>(index)];
}

int DvfsController::pstate_of(double freq_ghz) const {
  int best = 0;
  double best_dist = std::abs(ladder_[0] - freq_ghz);
  for (int i = 1; i < num_pstates(); ++i) {
    const double dist = std::abs(ladder_[static_cast<std::size_t>(i)] -
                                 freq_ghz);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

double DvfsController::snap(double freq_ghz) const {
  return frequency_ghz(pstate_of(freq_ghz));
}

double DvfsController::step_down(double freq_ghz) const {
  const int idx = pstate_of(freq_ghz);
  return frequency_ghz(std::max(0, idx - 1));
}

double DvfsController::step_up(double freq_ghz) const {
  const int idx = pstate_of(freq_ghz);
  return frequency_ghz(std::min(max_pstate(), idx + 1));
}

void DvfsController::set_userspace_frequency(double freq_ghz) {
  userspace_target_ghz_ = snap(freq_ghz);
}

double DvfsController::effective_frequency(double load,
                                           double previous_ghz) const {
  const double clamped_load = math_util::clamp(load, 0.0, 1.0);
  switch (governor_) {
    case Governor::kPerformance:
      return ladder_.back();
    case Governor::kPowersave:
      return ladder_.front();
    case Governor::kUserspace:
      return userspace_target_ghz_;
    case Governor::kOndemand: {
      // Linux ondemand: jump to a frequency proportional to load, with the
      // classic up-threshold at 80%.
      if (clamped_load >= 0.8) return ladder_.back();
      const double target =
          ladder_.front() +
          (ladder_.back() - ladder_.front()) * (clamped_load / 0.8);
      return snap(target);
    }
    case Governor::kConservative: {
      // Single-step moves toward the load-proportional target.
      const double target =
          ladder_.front() +
          (ladder_.back() - ladder_.front()) * clamped_load;
      if (target > previous_ghz + 1e-9) return step_up(previous_ghz);
      if (target < previous_ghz - 1e-9) return step_down(previous_ghz);
      return snap(previous_ghz);
    }
  }
  return ladder_.back();
}

}  // namespace greennfv::hwmodel
