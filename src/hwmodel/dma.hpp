#pragma once

#include <cstdint>

#include "hwmodel/node_spec.hpp"

/// \file dma.hpp
/// NIC DMA buffer model. The DMA buffer (descriptor ring + mbuf backing
/// store) determines how large a burst the NIC can absorb before the poll
/// loop drains it. Too small a buffer stalls the NIC between polls (lost
/// slots -> throughput loss); growing it improves absorption with
/// diminishing returns; growing it past the DDIO ways additionally spills
/// inbound packets to DRAM (handled in CacheModel). This reproduces the
/// paper's Fig. 4: throughput "steadily increases up to a certain level"
/// with buffer size while energy per packet falls.

namespace greennfv::hwmodel {

class DmaModel {
 public:
  explicit DmaModel(const NodeSpec& spec) : spec_(spec) {}

  /// Fraction of NIC line rate sustainable with `buffer_bytes` of DMA
  /// buffering for packets of `pkt_bytes`. Rises from ~0 (no buffer) toward
  /// 1 following occupancy/(occupancy + k) where k is the burst the NIC must
  /// absorb during one poll interval: poll_interval_s * line_rate.
  [[nodiscard]] double absorption(std::uint64_t buffer_bytes,
                                  std::uint32_t pkt_bytes,
                                  double poll_interval_s) const;

  /// Largest batch the buffer can hand to one poll (buffer must hold at
  /// least a batch of packets; a 2 MB buffer of 1518 B frames caps batches
  /// near 1300 packets).
  [[nodiscard]] std::uint32_t max_batch(std::uint64_t buffer_bytes,
                                        std::uint32_t pkt_bytes) const;

  /// Default poll interval used when callers do not track one explicitly:
  /// the time to process one batch at a nominal 1 Mpps service rate.
  static constexpr double kDefaultPollIntervalS = 100e-6;

  /// Fixed mbuf slot size backing the descriptor ring (DPDK default 2 KB).
  static constexpr std::uint64_t kMbufBytes = 2048;

 private:
  NodeSpec spec_;
};

}  // namespace greennfv::hwmodel
