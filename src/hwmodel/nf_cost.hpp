#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file nf_cost.hpp
/// Per-NF cost profiles: the cycle/memory footprint of one packet through
/// one network function. The catalog covers the NF taxonomy the paper calls
/// out ("CPU intensive, memory-intensive, lightweight (e.g., NAT, firewall),
/// and more heavyweight (e.g., Evolved Packet Core)"). Numbers are
/// order-of-magnitude figures from the NFV literature (NFVnice, ResQ,
/// OpenNetVM evaluations) — what matters for reproduction is their relative
/// weight, which drives where each SLA policy spends its resource budget.

namespace greennfv::hwmodel {

struct NfCostProfile {
  std::string name;
  /// Fixed per-packet work at full cache hit (header parsing, lookups).
  double base_cycles = 100.0;
  /// Payload-proportional work (DPI scanning, crypto, checksums).
  double cycles_per_byte = 0.0;
  /// LLC references per packet subject to the chain's miss ratio.
  double mem_refs_per_pkt = 4.0;
  /// Resident state competing for LLC (rule tables, FIBs, automata).
  std::uint64_t state_bytes = 0;
};

/// Catalog of the NF types used across the paper's experiments.
namespace nf_catalog {

[[nodiscard]] NfCostProfile firewall();     ///< ACL matching, light state
[[nodiscard]] NfCostProfile nat();          ///< address translation table
[[nodiscard]] NfCostProfile router();       ///< LPM lookup, FIB-heavy
[[nodiscard]] NfCostProfile ids();          ///< DPI: payload-proportional
[[nodiscard]] NfCostProfile tunnel_gw();    ///< encap/decap + checksum
[[nodiscard]] NfCostProfile epc();          ///< heavyweight Evolved Packet Core
[[nodiscard]] NfCostProfile flow_monitor(); ///< per-flow counters

/// Profile by name; throws std::invalid_argument for unknown names.
[[nodiscard]] NfCostProfile by_name(const std::string& name);

/// All catalog names.
[[nodiscard]] std::vector<std::string> names();

}  // namespace nf_catalog

/// Sum of resident state across a chain.
[[nodiscard]] std::uint64_t total_state_bytes(
    const std::vector<NfCostProfile>& nfs);

}  // namespace greennfv::hwmodel
