#include "hwmodel/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"

namespace greennfv::hwmodel {

CacheDemand CostModel::demand_of(const std::vector<NfCostProfile>& nfs,
                                 const ChainWorkload& load,
                                 const ChainResources& res) const {
  CacheDemand demand;
  demand.state_bytes = total_state_bytes(nfs);
  // In-flight batch footprint. Packets live in fixed-size mbufs (DPDK uses
  // 2 KB buffers regardless of frame length), so the cache pressure of a
  // batch scales with max(frame, mbuf) — which is why oversized batches
  // thrash the LLC even for small frames (paper Fig. 3b).
  constexpr double kMbufBytes = 2048.0;
  const double per_pkt =
      std::max<double>(load.pkt_bytes, kMbufBytes);
  demand.packet_window_bytes = static_cast<std::uint64_t>(
      static_cast<double>(res.batch) * per_pkt *
      spec_.batch_footprint_factor);
  demand.dma_buffer_bytes = res.dma_bytes;
  demand.shared_unpartitioned = res.shared_llc;
  return demand;
}

ChainEvaluation CostModel::evaluate_chain(
    const std::vector<NfCostProfile>& nfs, const ChainWorkload& load,
    const ChainResources& res) const {
  GNFV_REQUIRE(!nfs.empty(), "evaluate_chain: empty chain");
  GNFV_REQUIRE(res.cores > 0.0, "evaluate_chain: zero cores");
  GNFV_REQUIRE(res.freq_ghz > 0.0, "evaluate_chain: zero frequency");
  GNFV_REQUIRE(res.batch >= 1, "evaluate_chain: batch must be >= 1");
  GNFV_REQUIRE(load.pkt_bytes >= 64, "evaluate_chain: sub-minimum frame");

  ChainEvaluation out;

  // --- cache behaviour ------------------------------------------------------
  const CacheDemand demand = demand_of(nfs, load, res);
  const CacheBehaviour cache = cache_.evaluate(demand, res.llc_bytes);
  out.miss_ratio = cache.miss_ratio;
  out.ddio_hit = cache.ddio_hit;
  out.working_set_bytes = cache.working_set_bytes;

  // A miss costs constant *time*, so its cycle cost grows with frequency.
  const double miss_penalty_cycles = spec_.mem_latency_ns * res.freq_ghz;

  // --- per-packet cycles ----------------------------------------------------
  double cycles = 0.0;
  double misses = 0.0;
  for (const auto& nf : nfs) {
    cycles += nf.base_cycles +
              nf.cycles_per_byte * static_cast<double>(load.pkt_bytes);
    misses += nf.mem_refs_per_pkt * cache.miss_ratio;
  }
  // First NF reads the packet out of DDIO (or DRAM if the buffer spilled;
  // prefetchers hide most of the sequential read, hence the spill-touch
  // discount).
  const double pkt_lines =
      std::ceil(static_cast<double>(load.pkt_bytes) /
                spec_.cache_line_bytes) *
      spec_.pkt_touch_fraction;
  misses += pkt_lines * (1.0 - cache.ddio_hit) * spec_.ddio_spill_touch;
  cycles += misses * miss_penalty_cycles;

  // Ring hops: RX -> NF1 -> ... -> NFn -> TX. Per-wakeup cost amortizes
  // over the batch — the mechanism behind Fig. 3's batching win.
  const double hops = static_cast<double>(nfs.size()) + 1.0;
  cycles += hops * (spec_.hop_cycles +
                    spec_.per_call_cycles / static_cast<double>(res.batch));

  out.cycles_per_pkt = cycles;
  out.misses_per_pkt = misses;

  // --- capacity ---------------------------------------------------------------
  const double cpu_pps =
      res.cores * units::ghz_to_hz(res.freq_ghz) / cycles;
  // The DMA buffer limits how much of the line rate the NIC can push in.
  const double line_pps =
      units::gbps_to_pps(spec_.line_rate_gbps, load.pkt_bytes);
  const double absorption = dma_.absorption(res.dma_bytes, load.pkt_bytes,
                                            DmaModel::kDefaultPollIntervalS);
  const double input_cap_pps = line_pps * absorption;
  out.service_pps = std::min(cpu_pps, input_cap_pps);

  // --- goodput / drops -----------------------------------------------------
  const double offered = std::max(load.offered_pps, 0.0);
  if (offered <= out.service_pps) {
    out.goodput_pps = offered;
  } else if (out.service_pps > 0.0) {
    // Receive livelock: past saturation, cycles wasted on to-be-dropped
    // packets depress goodput superlinearly, down to a floor where early
    // RX drops stop costing full processing.
    const double ratio = out.service_pps / offered;
    const double collapse =
        std::max(spec_.livelock_floor, std::pow(ratio, spec_.livelock_beta));
    out.goodput_pps = out.service_pps * collapse;
  }
  out.drop_pps = std::max(0.0, offered - out.goodput_pps);
  out.throughput_gbps = units::pps_to_gbps(out.goodput_pps, load.pkt_bytes);
  out.wire_gbps =
      out.goodput_pps * units::wire_bits_per_frame(load.pkt_bytes) /
      units::kGiga;

  // --- CPU occupancy ---------------------------------------------------------
  out.capacity_utilization =
      out.service_pps > 0.0
          ? math_util::clamp(offered / out.service_pps, 0.0, 1.0)
          : 0.0;
  const double duty =
      res.poll_mode
          ? 1.0
          : std::max(spec_.min_poll_duty, out.capacity_utilization);
  out.busy_cores = res.cores * duty;

  // --- latency ----------------------------------------------------------------
  if (out.service_pps > 0.0) {
    // Service: one packet's processing time through the chain.
    const double service_s = cycles / units::ghz_to_hz(res.freq_ghz);
    // Batch assembly: on average half a batch accumulates before the poll
    // fires (bounded by the poll interval when traffic is slow).
    const double arrival = std::max(offered, 1.0);
    const double assembly_s =
        std::min(0.5 * static_cast<double>(res.batch) / arrival,
                 DmaModel::kDefaultPollIntervalS * 4.0);
    // Queueing: M/M/1 sojourn grows as utilization approaches 1; capped at
    // the backlog a full descriptor ring represents (tail drop beyond).
    const double rho = math_util::clamp(
        offered / out.service_pps, 0.0, 0.995);
    const double queueing_s = (1.0 / out.service_pps) * rho / (1.0 - rho);
    const double ring_bound_s =
        static_cast<double>(res.dma_bytes / DmaModel::kMbufBytes) /
        out.service_pps;
    out.mean_latency_us =
        (service_s + assembly_s + std::min(queueing_s, ring_bound_s)) * 1e6;
  }

  return out;
}

}  // namespace greennfv::hwmodel
