#pragma once

#include <cstdint>

#include "hwmodel/node_spec.hpp"

/// \file cache.hpp
/// LLC behaviour model: converts a service chain's working set and its CAT
/// allocation into an LLC miss ratio, and models DDIO hit probability for
/// inbound DMA. Calibrated against the paper's micro-benchmarks (Fig. 1:
/// LLC partitioning; Fig. 3b: batch-driven miss growth).

namespace greennfv::hwmodel {

/// Inputs describing one chain's cache pressure.
struct CacheDemand {
  /// Static state touched per packet across the chain's NFs (rule tables,
  /// FIBs, DPI automata...).
  std::uint64_t state_bytes = 0;
  /// In-flight packet data: batch_size * pkt_bytes * footprint factor.
  std::uint64_t packet_window_bytes = 0;
  /// NIC DMA buffer size — competes for DDIO ways.
  std::uint64_t dma_buffer_bytes = 0;
  /// True when the LLC is unpartitioned and co-resident workloads conflict
  /// (adds NodeSpec::contention_miss to the floor).
  bool shared_unpartitioned = false;
};

/// Outputs of the cache model for one chain evaluation.
struct CacheBehaviour {
  /// Probability that one of the chain's memory references misses LLC.
  double miss_ratio = 0.0;
  /// Probability that the first NF's packet read hits DDIO-placed lines
  /// (1.0 = NIC wrote everything into LLC, 0.0 = all packet reads go to DRAM).
  double ddio_hit = 1.0;
  /// Working set the chain attempted to keep resident.
  std::uint64_t working_set_bytes = 0;
};

class CacheModel {
 public:
  explicit CacheModel(const NodeSpec& spec) : spec_(spec) {}

  /// Evaluates the miss behaviour of a chain that owns `allocated_bytes`
  /// of LLC (via CAT) and presents the given demand.
  ///
  /// The miss ratio follows a smooth capacity curve: at WS <= allocation it
  /// sits at the compulsory floor; past the allocation it climbs along
  /// pressure/(pressure+1) toward the ceiling — the standard analytic stand-in
  /// for an LRU stack-distance profile.
  [[nodiscard]] CacheBehaviour evaluate(const CacheDemand& demand,
                                        std::uint64_t allocated_bytes) const;

  /// Effective LLC bytes a chain sees **without** CAT partitioning, when
  /// `demand_share` (its fraction of total demand) competes against
  /// co-resident chains. Contention wastes a fraction of capacity on
  /// cross-chain evictions.
  [[nodiscard]] std::uint64_t contended_share(double demand_share) const;

  [[nodiscard]] const NodeSpec& spec() const { return spec_; }

  /// Fraction of LLC capacity lost to cross-workload conflict misses when
  /// the cache is unpartitioned (measured values on Xeon-class parts land
  /// around 20-30%; the paper's motivation for CAT).
  static constexpr double kContentionWaste = 0.25;

 private:
  NodeSpec spec_;
};

}  // namespace greennfv::hwmodel
