#include "hwmodel/energy_meter.hpp"

#include "common/assert.hpp"

namespace greennfv::hwmodel {

void EnergyMeter::accumulate(double power_w, double duration_s) {
  GNFV_REQUIRE(power_w >= 0.0, "EnergyMeter: negative power");
  GNFV_REQUIRE(duration_s >= 0.0, "EnergyMeter: negative duration");
  total_j_ += power_w * duration_s;
  total_s_ += duration_s;
}

double EnergyMeter::lap() {
  const double joules = total_j_ - lap_mark_j_;
  lap_mark_j_ = total_j_;
  return joules;
}

double EnergyMeter::mean_power_w() const {
  return total_s_ > 0.0 ? total_j_ / total_s_ : 0.0;
}

}  // namespace greennfv::hwmodel
