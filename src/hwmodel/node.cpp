#include "hwmodel/node.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.hpp"
#include "common/math_util.hpp"
#include "common/units.hpp"

namespace greennfv::hwmodel {

NodeModel::NodeModel(const NodeSpec& spec)
    : spec_(spec), cost_(spec), power_(spec) {}

NodeEvaluation NodeModel::evaluate(const std::vector<ChainDeployment>& chains,
                                   bool use_cat) const {
  GNFV_REQUIRE(!chains.empty(), "NodeModel::evaluate: no chains");
  NodeEvaluation out;
  out.chains.resize(chains.size());

  // --- resolve LLC allocations ------------------------------------------------
  std::vector<std::uint64_t> llc_bytes(chains.size());
  if (use_cat) {
    CatAllocator cat(spec_);
    std::vector<double> fractions;
    fractions.reserve(chains.size());
    for (const auto& c : chains)
      fractions.push_back(std::max(c.llc_fraction, 1e-3));
    cat.partition(fractions);
    for (std::size_t i = 0; i < chains.size(); ++i)
      llc_bytes[i] = cat.bytes(static_cast<ClosId>(i));
  } else {
    // Unpartitioned LLC: chains get demand-proportional contended shares.
    std::vector<double> demands(chains.size());
    double total_demand = 0.0;
    for (std::size_t i = 0; i < chains.size(); ++i) {
      ChainResources res;
      res.batch = chains[i].batch;
      res.dma_bytes = chains[i].dma_bytes;
      const CacheDemand d =
          cost_.demand_of(chains[i].nfs, chains[i].workload, res);
      demands[i] = static_cast<double>(d.state_bytes + d.packet_window_bytes);
      total_demand += demands[i];
    }
    for (std::size_t i = 0; i < chains.size(); ++i) {
      const double share =
          total_demand > 0.0 ? demands[i] / total_demand : 1.0;
      llc_bytes[i] = cost_.cache().contended_share(share);
    }
  }

  // --- evaluate chains ----------------------------------------------------------
  double busy_total = 0.0;
  double dynamic_w = 0.0;
  const double delta_p = spec_.p_max_w - spec_.p_idle_w;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const auto& chain = chains[i];
    ChainResources res;
    res.cores = chain.cores;
    res.freq_ghz = chain.freq_ghz;
    res.llc_bytes = llc_bytes[i];
    res.dma_bytes = chain.dma_bytes;
    res.batch = chain.batch;
    res.poll_mode = chain.poll_mode;
    res.shared_llc = !use_cat;

    ChainReport& report = out.chains[i];
    report.llc_bytes = llc_bytes[i];
    report.eval = cost_.evaluate_chain(chain.nfs, chain.workload, res);

    out.allocated_cores += chain.cores;
    busy_total += report.eval.busy_cores;
    out.total_goodput_gbps += report.eval.throughput_gbps;
    out.total_goodput_pps += report.eval.goodput_pps;
    out.total_drop_pps += report.eval.drop_pps;
    out.total_offered_gbps += units::pps_to_gbps(
        chain.workload.offered_pps, chain.workload.pkt_bytes);

    // Per-chain dynamic power: Eq. 4's shape on the chain's own core group,
    // weighted by its slice of the machine and its DVFS point. Summing the
    // groups reduces exactly to Eq. 4 when one chain owns every core.
    const double group_u = chain.cores > 0.0
                               ? math_util::clamp(
                                     report.eval.busy_cores / chain.cores,
                                     0.0, 1.0)
                               : 0.0;
    const double shape =
        2.0 * group_u - std::pow(group_u, spec_.fan_h);
    const double weight =
        math_util::clamp(chain.cores / spec_.total_cores, 0.0, 1.0);
    const double group_dyn = delta_p *
                             power_.frequency_scale(chain.freq_ghz) * shape *
                             weight;
    report.power_w = group_dyn;  // idle share added below
    dynamic_w += group_dyn;
  }

  // --- NIC aggregate cap -----------------------------------------------------
  // All chains share one port; if their combined wire rate exceeds line
  // rate, the NIC scales everyone back proportionally.
  double wire_total = 0.0;
  for (const auto& report : out.chains) wire_total += report.eval.wire_gbps;
  if (wire_total > spec_.line_rate_gbps) {
    const double scale = spec_.line_rate_gbps / wire_total;
    out.total_goodput_gbps = 0.0;
    out.total_goodput_pps = 0.0;
    for (auto& report : out.chains) {
      ChainEvaluation& ev = report.eval;
      const double cut = ev.goodput_pps * (1.0 - scale);
      ev.goodput_pps *= scale;
      ev.throughput_gbps *= scale;
      ev.wire_gbps *= scale;
      ev.drop_pps += cut;
      out.total_goodput_gbps += ev.throughput_gbps;
      out.total_goodput_pps += ev.goodput_pps;
      out.total_drop_pps += cut;
    }
  }

  // --- manager overhead ----------------------------------------------------
  // The ONVM controller's RX/TX threads occupy dedicated cores; they poll
  // whenever any chain does, otherwise they duty-cycle with overall load,
  // and they run at the (core-weighted) frequency of the chains they serve.
  bool any_poll = false;
  double max_cap_util = 0.0;
  double freq_weighted = 0.0;
  double core_weight = 0.0;
  for (std::size_t i = 0; i < chains.size(); ++i) {
    any_poll = any_poll || chains[i].poll_mode;
    max_cap_util =
        std::max(max_cap_util, out.chains[i].eval.capacity_utilization);
    freq_weighted += chains[i].freq_ghz * chains[i].cores;
    core_weight += chains[i].cores;
  }
  const double mgr_freq =
      core_weight > 0.0 ? freq_weighted / core_weight : spec_.fmax_ghz;
  const double mgr_duty =
      any_poll ? 1.0 : std::max(spec_.min_poll_duty, max_cap_util);
  const double mgr_busy = spec_.controller_cores * mgr_duty;
  busy_total += mgr_busy;
  out.allocated_cores += spec_.controller_cores;
  {
    const double mgr_u = math_util::clamp(mgr_duty, 0.0, 1.0);
    const double mgr_shape = 2.0 * mgr_u - std::pow(mgr_u, spec_.fan_h);
    dynamic_w += delta_p * power_.frequency_scale(mgr_freq) * mgr_shape *
                 math_util::clamp(
                     spec_.controller_cores / spec_.total_cores, 0.0, 1.0);
  }

  out.utilization = math_util::clamp(
      busy_total / static_cast<double>(spec_.total_cores), 0.0, 1.0);
  out.power_w = spec_.p_idle_w + dynamic_w;

  // Attribute idle power by allocated-core share so per-chain J/Mpkt is
  // meaningful even for lightly loaded chains.
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const double alloc_share =
        out.allocated_cores > 0.0 ? chains[i].cores / out.allocated_cores
                                  : 1.0 / static_cast<double>(chains.size());
    out.chains[i].power_w += spec_.p_idle_w * alloc_share;
    const double mpps = out.chains[i].eval.goodput_pps / units::kMega;
    out.chains[i].energy_per_mpkt_j =
        mpps > 1e-9 ? out.chains[i].power_w / mpps : 0.0;
  }

  return out;
}

}  // namespace greennfv::hwmodel
