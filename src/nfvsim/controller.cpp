#include "nfvsim/controller.hpp"

#include "common/assert.hpp"

namespace greennfv::nfvsim {

std::string to_string(SchedMode mode) {
  return mode == SchedMode::kPoll ? "poll" : "hybrid";
}

OnvmController::OnvmController(hwmodel::NodeSpec spec, SchedMode mode)
    : spec_(spec), dvfs_(spec), sched_mode_(mode) {
  dvfs_.set_governor(hwmodel::Governor::kUserspace);
}

int OnvmController::add_chain(const std::string& name,
                              const std::vector<std::string>& nf_names) {
  chains_.push_back(std::make_unique<ServiceChain>(name, nf_names));
  knobs_.push_back(baseline_knobs(spec_));
  return static_cast<int>(chains_.size()) - 1;
}

ChainKnobs OnvmController::apply_knobs(std::size_t chain_index,
                                       const ChainKnobs& knobs) {
  GNFV_REQUIRE(chain_index < chains_.size(), "apply_knobs: bad chain index");
  ChainKnobs applied = knobs.clamped(spec_);
  applied.freq_ghz = dvfs_.snap(applied.freq_ghz);
  knobs_[chain_index] = applied;
  return applied;
}

std::vector<hwmodel::ChainDeployment> OnvmController::deployments(
    const std::vector<hwmodel::ChainWorkload>& workloads) const {
  GNFV_REQUIRE(workloads.size() == chains_.size(),
               "deployments: workload count != chain count");
  std::vector<hwmodel::ChainDeployment> out;
  out.reserve(chains_.size());
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    hwmodel::ChainDeployment dep;
    dep.nfs = chains_[i]->cost_profiles();
    dep.workload = workloads[i];
    dep.cores = knobs_[i].cores;
    dep.freq_ghz = knobs_[i].freq_ghz;
    dep.llc_fraction = knobs_[i].llc_fraction;
    dep.dma_bytes = knobs_[i].dma_bytes;
    dep.batch = knobs_[i].batch;
    dep.poll_mode = sched_mode_ == SchedMode::kPoll;
    out.push_back(std::move(dep));
  }
  return out;
}

}  // namespace greennfv::nfvsim
