#include "nfvsim/knobs.hpp"

#include <algorithm>

#include "common/math_util.hpp"
#include "common/string_util.hpp"

namespace greennfv::nfvsim {

std::string ChainKnobs::to_string() const {
  return format("cores=%.2f freq=%.1fGHz llc=%.0f%% dma=%.1fMiB batch=%u",
                cores, freq_ghz, llc_fraction * 100.0,
                units::bytes_to_mib(dma_bytes), batch);
}

ChainKnobs ChainKnobs::clamped(const hwmodel::NodeSpec& spec) const {
  ChainKnobs out = *this;
  out.cores = math_util::clamp(cores, kMinCores,
                               std::min(kMaxCores,
                                        static_cast<double>(spec.total_cores)));
  out.freq_ghz = math_util::clamp(freq_ghz, spec.fmin_ghz, spec.fmax_ghz);
  out.llc_fraction =
      math_util::clamp(llc_fraction, kMinLlcFraction, kMaxLlcFraction);
  const auto max_dma = units::mib_to_bytes(spec.max_dma_buffer_mib);
  out.dma_bytes = std::clamp(dma_bytes, kMinDmaBytes, max_dma);
  out.batch = std::clamp(batch, kMinBatch, kMaxBatch);
  return out;
}

ChainKnobs baseline_knobs(const hwmodel::NodeSpec& spec) {
  ChainKnobs knobs;
  knobs.cores = 1.0;
  knobs.freq_ghz = spec.fmax_ghz;  // performance governor
  knobs.llc_fraction = 0.25;       // ignored: baseline runs without CAT
  // ixgbe (the paper's X540 NIC) defaults to 512 RX descriptors; at 2 KB
  // mbufs that is a 1 MiB DMA buffer.
  knobs.dma_bytes = 1ull * units::kMiB;
  knobs.batch = 2;                 // ONVM default burst (Algorithm 1, line 4)
  return knobs;
}

}  // namespace greennfv::nfvsim
