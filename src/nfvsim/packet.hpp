#pragma once

#include <array>
#include <cstdint>

/// \file packet.hpp
/// The mbuf of this platform. Real header bytes live inline (NFs parse and
/// mutate them); payload is represented by its length plus a checksum seed
/// so IDS-style NFs have bytes-proportional work to do without carrying
/// 1.5 KB per packet through the simulator.

namespace greennfv::nfvsim {

struct alignas(64) Packet {
  std::uint64_t id = 0;
  std::uint32_t flow_id = 0;
  std::uint32_t frame_bytes = 0;   ///< wire size, 64..1518
  std::int64_t rx_ts_ns = 0;       ///< arrival timestamp (virtual clock)
  std::uint16_t chain_pos = 0;     ///< index of the next NF in the chain
  std::uint16_t flags = 0;

  // Synthetic 5-tuple "headers" the NFs actually read and rewrite.
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t ip_proto = 17;      ///< 6 = TCP, 17 = UDP
  std::uint8_t ttl = 64;

  /// Rolling payload digest IDS/tunnel NFs fold per-byte work into.
  std::uint64_t payload_digest = 0;

  static constexpr std::uint16_t kFlagDropped = 1u << 0;
  static constexpr std::uint16_t kFlagTunneled = 1u << 1;
  static constexpr std::uint16_t kFlagNatRewritten = 1u << 2;
  static constexpr std::uint16_t kFlagAlerted = 1u << 3;

  [[nodiscard]] bool dropped() const { return (flags & kFlagDropped) != 0; }
  void mark_dropped() { flags |= kFlagDropped; }
};

static_assert(sizeof(Packet) == 64, "Packet should fill one cache line");

}  // namespace greennfv::nfvsim
