#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hwmodel/nf_cost.hpp"
#include "nfvsim/nf.hpp"
#include "nfvsim/packet.hpp"
#include "nfvsim/ring.hpp"

/// \file chain.hpp
/// A service chain: NFs in series connection (the paper's deployment:
/// "Each node hosts an NF chain with three Network functions. Network
/// functions are chained with a series connection."). The chain owns the
/// inter-NF SPSC rings used by the threaded engine and exposes the cost
/// profiles consumed by the analytic model.

namespace greennfv::nfvsim {

class ServiceChain {
 public:
  /// Builds a chain from catalog names, e.g. {"firewall","router","ids"}.
  ServiceChain(std::string name, const std::vector<std::string>& nf_names,
               std::size_t ring_capacity = 4096);

  ServiceChain(const ServiceChain&) = delete;
  ServiceChain& operator=(const ServiceChain&) = delete;
  ServiceChain(ServiceChain&&) = default;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_nfs() const { return nfs_.size(); }
  [[nodiscard]] NetworkFunction& nf(std::size_t i) { return *nfs_.at(i); }
  [[nodiscard]] const NetworkFunction& nf(std::size_t i) const {
    return *nfs_.at(i);
  }

  /// Cost profiles of all NFs, in chain order (for hwmodel::CostModel).
  [[nodiscard]] std::vector<hwmodel::NfCostProfile> cost_profiles() const;

  /// Input ring of NF `i` (ring 0 is the chain's RX queue); ring
  /// `num_nfs()` is the TX/output ring.
  [[nodiscard]] SpscRing<Packet*>& ring(std::size_t i) {
    return *rings_.at(i);
  }
  [[nodiscard]] std::size_t num_rings() const { return rings_.size(); }

  /// Runs one packet through every NF inline (no rings); returns false if
  /// some NF dropped it. Used by tests and the quickstart example.
  bool process_inline(Packet& pkt);

  /// Runs a burst through every NF inline; returns delivered count.
  std::size_t process_batch_inline(std::span<Packet* const> batch);

  /// Sum of per-NF drop counters.
  [[nodiscard]] std::uint64_t total_nf_drops() const;

  void reset_stats();

 private:
  std::string name_;
  std::vector<std::unique_ptr<NetworkFunction>> nfs_;
  std::vector<std::unique_ptr<SpscRing<Packet*>>> rings_;
};

/// The 3-NF chains used throughout the paper's evaluation. Index selects a
/// composition; compositions differ in weight so nodes are heterogeneous.
[[nodiscard]] std::vector<std::string> standard_chain_nfs(int variant);

}  // namespace greennfv::nfvsim
