#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hwmodel/dvfs.hpp"
#include "hwmodel/node.hpp"
#include "nfvsim/chain.hpp"
#include "nfvsim/knobs.hpp"

/// \file controller.hpp
/// The ONVM-style manager. Owns the node's chains, holds each chain's knob
/// configuration, snaps DVFS requests to the ladder, drives CAT
/// partitioning, and translates its state into hwmodel deployments for the
/// analytic engine. GreenNFV's NF controller (core/nf_controller) issues
/// `apply_knobs` calls against this class — the same interface the paper
/// added to the ONVM controller.

namespace greennfv::nfvsim {

/// NF scheduling discipline.
enum class SchedMode {
  kPoll,    ///< DPDK default: dedicated spinning, 100% duty
  kHybrid,  ///< paper's "mix of callback and polling": sleep on empty queues
};

[[nodiscard]] std::string to_string(SchedMode mode);

class OnvmController {
 public:
  explicit OnvmController(hwmodel::NodeSpec spec = hwmodel::NodeSpec{},
                          SchedMode mode = SchedMode::kHybrid);

  /// Deploys a chain built from NF catalog names; returns its index.
  int add_chain(const std::string& name,
                const std::vector<std::string>& nf_names);

  [[nodiscard]] std::size_t num_chains() const { return chains_.size(); }
  [[nodiscard]] ServiceChain& chain(std::size_t i) { return *chains_.at(i); }
  [[nodiscard]] const ServiceChain& chain(std::size_t i) const {
    return *chains_.at(i);
  }

  /// Applies a knob configuration to one chain: clamps to hardware limits
  /// and snaps the frequency to the DVFS ladder. Returns what was applied.
  ChainKnobs apply_knobs(std::size_t chain_index, const ChainKnobs& knobs);

  [[nodiscard]] const ChainKnobs& knobs(std::size_t chain_index) const {
    return knobs_.at(chain_index);
  }

  /// Enables/disables CAT partitioning (baseline runs without it).
  void set_use_cat(bool use_cat) { use_cat_ = use_cat; }
  [[nodiscard]] bool use_cat() const { return use_cat_; }

  void set_sched_mode(SchedMode mode) { sched_mode_ = mode; }
  [[nodiscard]] SchedMode sched_mode() const { return sched_mode_; }

  [[nodiscard]] const hwmodel::NodeSpec& spec() const { return spec_; }
  [[nodiscard]] const hwmodel::DvfsController& dvfs() const { return dvfs_; }

  /// Builds hwmodel deployments for the current knob state and the given
  /// per-chain workloads (one entry per chain).
  [[nodiscard]] std::vector<hwmodel::ChainDeployment> deployments(
      const std::vector<hwmodel::ChainWorkload>& workloads) const;

 private:
  hwmodel::NodeSpec spec_;
  hwmodel::DvfsController dvfs_;
  SchedMode sched_mode_;
  bool use_cat_ = true;
  std::vector<std::unique_ptr<ServiceChain>> chains_;
  std::vector<ChainKnobs> knobs_;
};

}  // namespace greennfv::nfvsim
