#include "nfvsim/mempool.hpp"

#include <thread>

#include "common/assert.hpp"

namespace greennfv::nfvsim {

Mempool::Mempool(std::size_t capacity)
    : capacity_(capacity), slab_(capacity), freelist_(capacity + 1) {
  GNFV_REQUIRE(capacity >= 1, "Mempool: capacity must be >= 1");
  for (auto& pkt : slab_) {
    const bool ok = freelist_.try_push(&pkt);
    GNFV_ASSERT(ok, "Mempool: freelist undersized");
  }
}

Packet* Mempool::alloc() {
  Packet* pkt = nullptr;
  if (!freelist_.try_pop(pkt)) return nullptr;
  in_use_.fetch_add(1, std::memory_order_relaxed);
  return pkt;
}

void Mempool::free(Packet* pkt) {
  GNFV_REQUIRE(pkt != nullptr, "Mempool::free(nullptr)");
  GNFV_ASSERT(owns(pkt), "Mempool::free: foreign packet");
  pkt->flags = 0;
  pkt->chain_pos = 0;
  // The freelist has more cells than packets exist, so a failed push can
  // only be (a) a transient Vyukov-queue stall — a consumer claimed the
  // cell a lap ago but was descheduled before publishing its sequence —
  // or (b) a real double free flooding the queue past capacity. Retry
  // through (a); only a push that stays refused is (b).
  bool ok = freelist_.try_push(pkt);
  for (int spins = 0; !ok && spins < (1 << 20); ++spins) {
    std::this_thread::yield();
    ok = freelist_.try_push(pkt);
  }
  GNFV_ASSERT(ok, "Mempool: double free or freelist overflow");
  in_use_.fetch_sub(1, std::memory_order_relaxed);
}

bool Mempool::owns(const Packet* pkt) const {
  return pkt >= slab_.data() && pkt < slab_.data() + slab_.size();
}

}  // namespace greennfv::nfvsim
