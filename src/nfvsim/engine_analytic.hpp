#pragma once

#include <vector>

#include "hwmodel/energy_meter.hpp"
#include "hwmodel/node.hpp"
#include "nfvsim/controller.hpp"
#include "traffic/generator.hpp"

/// \file engine_analytic.hpp
/// The windowed virtual-time simulator: every `step(dt)` it samples the
/// traffic generator, evaluates the node model at the controller's current
/// knob state, integrates energy, and feeds goodput/drop feedback to TCP
/// flows. Fast enough to run the RL training loops (tens of thousands of
/// episodes) while exercising the exact same controller/knob code path as
/// the threaded engine.

namespace greennfv::nfvsim {

/// Everything measured in one window.
struct WindowMetrics {
  double t_start_s = 0.0;
  double dt_s = 0.0;
  hwmodel::NodeEvaluation node;
  double energy_j = 0.0;           ///< node energy for this window
  double offered_pps = 0.0;

  [[nodiscard]] double total_gbps() const { return node.total_goodput_gbps; }
  [[nodiscard]] double power_w() const { return node.power_w; }
  [[nodiscard]] double utilization() const { return node.utilization; }
};

class AnalyticEngine {
 public:
  /// The engine borrows the controller (knobs may be changed between
  /// steps) and owns its traffic generator.
  AnalyticEngine(OnvmController& controller,
                 traffic::TrafficGenerator generator);

  /// Advances virtual time by `dt` seconds and returns the window metrics.
  WindowMetrics step(double dt);

  /// Runs `windows` steps of `dt` and returns aggregate means/totals —
  /// the "episode" primitive the RL environment builds on.
  struct RunSummary {
    double duration_s = 0.0;
    double mean_gbps = 0.0;
    double mean_power_w = 0.0;
    double energy_j = 0.0;
    double mean_utilization = 0.0;
    double mean_offered_pps = 0.0;
    double mean_goodput_pps = 0.0;
    double drop_fraction = 0.0;
    /// Per-chain mean throughput in Gbps.
    std::vector<double> chain_gbps;
    /// Per-chain mean packet arrival rate (the state-space Ω signal).
    std::vector<double> chain_arrival_pps;
    /// Per-chain attributed energy over the run (the state-space E signal).
    std::vector<double> chain_energy_j;
    /// Per-chain mean busy cores (the state-space ξ signal; 1.0 = 100%).
    std::vector<double> chain_busy_cores;
  };
  RunSummary run(int windows, double dt);

  [[nodiscard]] double time_s() const { return time_s_; }
  [[nodiscard]] const hwmodel::EnergyMeter& meter() const { return meter_; }
  [[nodiscard]] OnvmController& controller() { return controller_; }
  [[nodiscard]] traffic::TrafficGenerator& generator() { return generator_; }

  /// Resets virtual time, the meter, and the traffic state.
  void reset(std::uint64_t seed);

 private:
  OnvmController& controller_;
  traffic::TrafficGenerator generator_;
  hwmodel::NodeModel node_model_;
  hwmodel::EnergyMeter meter_;
  double time_s_ = 0.0;

  /// Folds the per-flow loads into per-chain workloads (offered pps plus
  /// pps-weighted mean frame size).
  [[nodiscard]] std::vector<hwmodel::ChainWorkload> chain_workloads(
      const traffic::WindowLoad& load) const;
};

}  // namespace greennfv::nfvsim
