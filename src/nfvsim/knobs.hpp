#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "hwmodel/node_spec.hpp"

/// \file knobs.hpp
/// The five GreenNFV control knobs for one service chain, in engineering
/// units, with the legal ranges from the paper's testbed. `clamped()` snaps
/// a requested configuration into range — the RL action decoder and the
/// heuristic both go through it so no component can configure impossible
/// hardware.

namespace greennfv::nfvsim {

struct ChainKnobs {
  /// CPU share in cores (the paper plots "CPU usage %" up to 400% = 4 cores).
  double cores = 1.0;
  /// DVFS target; snapped to the ladder by the controller.
  double freq_ghz = 2.1;
  /// Fraction of the allocatable LLC requested via CAT.
  double llc_fraction = 0.25;
  /// NIC DMA buffer size in bytes.
  std::uint64_t dma_bytes = 2ull * units::kMiB;
  /// Packets per poll batch.
  std::uint32_t batch = 32;

  [[nodiscard]] std::string to_string() const;

  /// Returns a copy with every knob clamped to the node's legal range.
  [[nodiscard]] ChainKnobs clamped(const hwmodel::NodeSpec& spec) const;

  /// Knob ranges (shared by the RL action scaling and the clamp).
  static constexpr double kMinCores = 0.1;
  static constexpr double kMaxCores = 4.0;
  static constexpr double kMinLlcFraction = 0.02;
  static constexpr double kMaxLlcFraction = 1.0;
  static constexpr std::uint64_t kMinDmaBytes = 256ull * units::kKiB;
  static constexpr std::uint32_t kMinBatch = 1;
  static constexpr std::uint32_t kMaxBatch = 256;
};

/// The paper's baseline configuration: performance governor (fmax) and
/// platform defaults everywhere else, no CAT partitioning, pure poll mode.
[[nodiscard]] ChainKnobs baseline_knobs(const hwmodel::NodeSpec& spec);

}  // namespace greennfv::nfvsim
