#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "hwmodel/nf_cost.hpp"
#include "nfvsim/packet.hpp"

/// \file nf.hpp
/// The network-function library. Each NF carries (a) a cost profile consumed
/// by the analytic hardware model and (b) a real `process()` implementation
/// the threaded engine runs on actual packets — firewalls match ACLs, the
/// router does longest-prefix matching, the IDS folds payload bytes, etc.
/// The pairing keeps the simulator honest: the code path a packet takes is
/// genuine; only its *cycle cost* is modelled.

namespace greennfv::nfvsim {

class NetworkFunction {
 public:
  explicit NetworkFunction(hwmodel::NfCostProfile profile)
      : profile_(std::move(profile)) {}
  virtual ~NetworkFunction() = default;

  NetworkFunction(const NetworkFunction&) = delete;
  NetworkFunction& operator=(const NetworkFunction&) = delete;

  /// Processes one packet in place; may set kFlagDropped.
  virtual void process(Packet& pkt) = 0;

  /// Processes a burst; skips packets already dropped upstream.
  void process_batch(std::span<Packet* const> batch);

  [[nodiscard]] const hwmodel::NfCostProfile& profile() const {
    return profile_;
  }
  [[nodiscard]] const std::string& name() const { return profile_.name; }

  [[nodiscard]] std::uint64_t processed() const { return processed_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void reset_stats() {
    processed_ = 0;
    dropped_ = 0;
  }

 protected:
  void count_drop() { ++dropped_; }

 private:
  hwmodel::NfCostProfile profile_;
  std::uint64_t processed_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Stateless ACL firewall: first-match over a rule list, default accept.
class FirewallNf final : public NetworkFunction {
 public:
  struct Rule {
    std::uint32_t src_ip = 0;
    std::uint32_t src_mask = 0;  ///< 0 = wildcard
    std::uint32_t dst_ip = 0;
    std::uint32_t dst_mask = 0;
    std::uint16_t dst_port_lo = 0;
    std::uint16_t dst_port_hi = 0xFFFF;
    bool deny = true;
  };

  explicit FirewallNf(std::vector<Rule> rules = default_rules());
  void process(Packet& pkt) override;

  [[nodiscard]] static std::vector<Rule> default_rules();

 private:
  std::vector<Rule> rules_;
};

/// Source NAT: allocates external ports per connection, rewrites the
/// source tuple.
class NatNf final : public NetworkFunction {
 public:
  NatNf();
  void process(Packet& pkt) override;

  [[nodiscard]] std::size_t table_size() const { return table_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::uint16_t> table_;
  std::uint16_t next_port_ = 1024;
  std::uint32_t external_ip_;
};

/// IPv4 router: longest-prefix match over a binary trie, TTL handling.
class RouterNf final : public NetworkFunction {
 public:
  struct Route {
    std::uint32_t prefix = 0;
    int prefix_len = 0;
    int next_hop = 0;
  };

  explicit RouterNf(std::vector<Route> routes = default_routes());
  void process(Packet& pkt) override;

  /// LPM lookup; returns next hop or -1 when no route matches.
  [[nodiscard]] int lookup(std::uint32_t dst_ip) const;

  [[nodiscard]] static std::vector<Route> default_routes();

 private:
  struct TrieNode {
    int children[2] = {-1, -1};
    int next_hop = -1;
  };
  std::vector<TrieNode> trie_;

  void insert(const Route& route);
};

/// Signature IDS: payload-proportional scanning work; raises an alert flag
/// on (deterministic pseudo-)matches. Heaviest per-byte cost in the catalog.
class IdsNf final : public NetworkFunction {
 public:
  IdsNf();
  void process(Packet& pkt) override;

  [[nodiscard]] std::uint64_t alerts() const { return alerts_; }

 private:
  std::uint64_t alerts_ = 0;
};

/// VXLAN-style tunnel gateway: encapsulates on ingress, decapsulates
/// tunneled packets on a second pass.
class TunnelGwNf final : public NetworkFunction {
 public:
  TunnelGwNf();
  void process(Packet& pkt) override;

  static constexpr std::uint32_t kEncapOverheadBytes = 50;
};

/// Evolved-Packet-Core-style heavyweight NF: bearer lookup + charging
/// counters + QoS bucket per packet.
class EpcNf final : public NetworkFunction {
 public:
  EpcNf();
  void process(Packet& pkt) override;

 private:
  struct Bearer {
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    std::uint32_t qos_class = 0;
  };
  std::unordered_map<std::uint32_t, Bearer> bearers_;
};

/// Passive per-flow accounting.
class FlowMonitorNf final : public NetworkFunction {
 public:
  FlowMonitorNf();
  void process(Packet& pkt) override;

  [[nodiscard]] std::size_t flows_seen() const { return counters_.size(); }

 private:
  struct Counter {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };
  std::unordered_map<std::uint32_t, Counter> counters_;
};

/// Instantiates an NF by catalog name ("firewall", "nat", "router", "ids",
/// "tunnel_gw", "epc", "flow_monitor"). Throws std::invalid_argument for
/// unknown names.
[[nodiscard]] std::unique_ptr<NetworkFunction> make_nf(
    const std::string& name);

}  // namespace greennfv::nfvsim
