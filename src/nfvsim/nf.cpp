#include "nfvsim/nf.hpp"

#include <stdexcept>

#include "common/assert.hpp"

namespace greennfv::nfvsim {

void NetworkFunction::process_batch(std::span<Packet* const> batch) {
  for (Packet* pkt : batch) {
    GNFV_ASSERT(pkt != nullptr, "process_batch: null packet");
    if (pkt->dropped()) continue;
    process(*pkt);
    ++processed_;
  }
}

// --- Firewall -----------------------------------------------------------------

FirewallNf::FirewallNf(std::vector<Rule> rules)
    : NetworkFunction(hwmodel::nf_catalog::firewall()),
      rules_(std::move(rules)) {}

std::vector<FirewallNf::Rule> FirewallNf::default_rules() {
  // Deny a management subnet and a known-bad port range; accept the rest.
  std::vector<Rule> rules;
  Rule mgmt;
  mgmt.dst_ip = 0x0A000000;        // 10.0.0.0/8
  mgmt.dst_mask = 0xFF000000;
  mgmt.dst_port_lo = 22;
  mgmt.dst_port_hi = 22;
  mgmt.deny = true;
  rules.push_back(mgmt);
  Rule badports;
  badports.dst_port_lo = 6000;
  badports.dst_port_hi = 6063;
  badports.deny = true;
  rules.push_back(badports);
  return rules;
}

void FirewallNf::process(Packet& pkt) {
  for (const Rule& rule : rules_) {
    const bool src_match =
        rule.src_mask == 0 || (pkt.src_ip & rule.src_mask) == rule.src_ip;
    const bool dst_match =
        rule.dst_mask == 0 || (pkt.dst_ip & rule.dst_mask) == rule.dst_ip;
    const bool port_match =
        pkt.dst_port >= rule.dst_port_lo && pkt.dst_port <= rule.dst_port_hi;
    if (src_match && dst_match && port_match) {
      if (rule.deny) {
        pkt.mark_dropped();
        count_drop();
      }
      return;  // first match wins
    }
  }
}

// --- NAT -----------------------------------------------------------------------

namespace {

std::uint64_t five_tuple_key(const Packet& pkt) {
  std::uint64_t key = pkt.src_ip;
  key = key * 0x100000001B3ull ^ pkt.dst_ip;
  key = key * 0x100000001B3ull ^ pkt.src_port;
  key = key * 0x100000001B3ull ^ pkt.dst_port;
  key = key * 0x100000001B3ull ^ pkt.ip_proto;
  return key;
}

}  // namespace

NatNf::NatNf()
    : NetworkFunction(hwmodel::nf_catalog::nat()),
      external_ip_(0xC6336401) {  // 198.51.100.1 (TEST-NET-2)
  table_.reserve(1 << 16);
}

void NatNf::process(Packet& pkt) {
  const std::uint64_t key = five_tuple_key(pkt);
  auto [it, inserted] = table_.try_emplace(key, next_port_);
  if (inserted) {
    ++next_port_;
    if (next_port_ == 0) next_port_ = 1024;  // wrap around the dynamic range
  }
  pkt.src_ip = external_ip_;
  pkt.src_port = it->second;
  pkt.flags |= Packet::kFlagNatRewritten;
}

// --- Router --------------------------------------------------------------------

RouterNf::RouterNf(std::vector<Route> routes)
    : NetworkFunction(hwmodel::nf_catalog::router()) {
  trie_.emplace_back();  // root
  for (const Route& route : routes) insert(route);
}

std::vector<RouterNf::Route> RouterNf::default_routes() {
  // A small FIB with nested prefixes so LPM order actually matters.
  return {
      {0x00000000, 0, 0},   // default route
      {0x0A000000, 8, 1},   // 10.0.0.0/8
      {0x0A010000, 16, 2},  // 10.1.0.0/16
      {0x0A010100, 24, 3},  // 10.1.1.0/24
      {0xC0A80000, 16, 4},  // 192.168.0.0/16
      {0xAC100000, 12, 5},  // 172.16.0.0/12
  };
}

void RouterNf::insert(const Route& route) {
  GNFV_REQUIRE(route.prefix_len >= 0 && route.prefix_len <= 32,
               "router: bad prefix length");
  int node = 0;
  for (int depth = 0; depth < route.prefix_len; ++depth) {
    const int bit = (route.prefix >> (31 - depth)) & 1;
    if (trie_[static_cast<std::size_t>(node)].children[bit] < 0) {
      trie_[static_cast<std::size_t>(node)].children[bit] =
          static_cast<int>(trie_.size());
      trie_.emplace_back();
    }
    node = trie_[static_cast<std::size_t>(node)].children[bit];
  }
  trie_[static_cast<std::size_t>(node)].next_hop = route.next_hop;
}

int RouterNf::lookup(std::uint32_t dst_ip) const {
  int node = 0;
  int best = trie_[0].next_hop;
  for (int depth = 0; depth < 32; ++depth) {
    const int bit = (dst_ip >> (31 - depth)) & 1;
    node = trie_[static_cast<std::size_t>(node)].children[bit];
    if (node < 0) break;
    if (trie_[static_cast<std::size_t>(node)].next_hop >= 0)
      best = trie_[static_cast<std::size_t>(node)].next_hop;
  }
  return best;
}

void RouterNf::process(Packet& pkt) {
  if (pkt.ttl == 0) {
    pkt.mark_dropped();
    count_drop();
    return;
  }
  pkt.ttl -= 1;
  const int hop = lookup(pkt.dst_ip);
  if (hop < 0) {
    pkt.mark_dropped();
    count_drop();
  }
}

// --- IDS -----------------------------------------------------------------------

IdsNf::IdsNf() : NetworkFunction(hwmodel::nf_catalog::ids()) {}

void IdsNf::process(Packet& pkt) {
  // Payload-proportional scan: fold every payload byte's worth of work into
  // the digest (FNV-style), mirroring a DPI pass over the frame.
  std::uint64_t digest = pkt.payload_digest ^ pkt.src_ip;
  const std::uint32_t payload = pkt.frame_bytes;
  for (std::uint32_t i = 0; i < payload; i += 8) {
    digest = (digest ^ (pkt.id + i)) * 0x100000001B3ull;
  }
  pkt.payload_digest = digest;
  // Deterministic pseudo-signature hit rate of ~0.1%.
  if (digest % 1009 == 0) {
    pkt.flags |= Packet::kFlagAlerted;
    ++alerts_;
  }
}

// --- Tunnel gateway ----------------------------------------------------------------

TunnelGwNf::TunnelGwNf() : NetworkFunction(hwmodel::nf_catalog::tunnel_gw()) {}

void TunnelGwNf::process(Packet& pkt) {
  if ((pkt.flags & Packet::kFlagTunneled) == 0) {
    // Encapsulate: VXLAN-ish overhead, keep under the MTU ceiling.
    pkt.frame_bytes = std::min<std::uint32_t>(1518,
                                              pkt.frame_bytes +
                                                  kEncapOverheadBytes);
    pkt.flags |= Packet::kFlagTunneled;
    pkt.payload_digest =
        (pkt.payload_digest ^ 0x7FEDCBA987654321ull) * 0x100000001B3ull;
  } else {
    pkt.frame_bytes = pkt.frame_bytes > kEncapOverheadBytes + 64
                          ? pkt.frame_bytes - kEncapOverheadBytes
                          : 64;
    pkt.flags &= static_cast<std::uint16_t>(~Packet::kFlagTunneled);
  }
}

// --- EPC -----------------------------------------------------------------------

EpcNf::EpcNf() : NetworkFunction(hwmodel::nf_catalog::epc()) {
  bearers_.reserve(1 << 12);
}

void EpcNf::process(Packet& pkt) {
  // Bearer = subscriber session keyed by inner source address.
  Bearer& bearer = bearers_[pkt.src_ip];
  bearer.packets += 1;
  bearer.bytes += pkt.frame_bytes;
  bearer.qos_class = (pkt.dst_port % 9) + 1;  // QCI 1..9
  // Charging-function style digest update (several dependent hashes).
  std::uint64_t digest = pkt.payload_digest;
  digest = (digest ^ bearer.packets) * 0x100000001B3ull;
  digest = (digest ^ bearer.bytes) * 0x100000001B3ull;
  digest = (digest ^ bearer.qos_class) * 0x100000001B3ull;
  pkt.payload_digest = digest;
}

// --- Flow monitor ---------------------------------------------------------------

FlowMonitorNf::FlowMonitorNf()
    : NetworkFunction(hwmodel::nf_catalog::flow_monitor()) {
  counters_.reserve(1 << 12);
}

void FlowMonitorNf::process(Packet& pkt) {
  Counter& counter = counters_[pkt.flow_id];
  counter.packets += 1;
  counter.bytes += pkt.frame_bytes;
}

// --- Factory --------------------------------------------------------------------

std::unique_ptr<NetworkFunction> make_nf(const std::string& name) {
  if (name == "firewall") return std::make_unique<FirewallNf>();
  if (name == "nat") return std::make_unique<NatNf>();
  if (name == "router") return std::make_unique<RouterNf>();
  if (name == "ids") return std::make_unique<IdsNf>();
  if (name == "tunnel_gw") return std::make_unique<TunnelGwNf>();
  if (name == "epc") return std::make_unique<EpcNf>();
  if (name == "flow_monitor") return std::make_unique<FlowMonitorNf>();
  throw std::invalid_argument("make_nf: unknown NF: " + name);
}

}  // namespace greennfv::nfvsim
