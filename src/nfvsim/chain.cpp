#include "nfvsim/chain.hpp"

#include "common/assert.hpp"

namespace greennfv::nfvsim {

ServiceChain::ServiceChain(std::string name,
                           const std::vector<std::string>& nf_names,
                           std::size_t ring_capacity)
    : name_(std::move(name)) {
  GNFV_REQUIRE(!nf_names.empty(), "ServiceChain: empty NF list");
  nfs_.reserve(nf_names.size());
  for (const auto& nf_name : nf_names) nfs_.push_back(make_nf(nf_name));
  // One input ring per NF plus the TX ring.
  rings_.reserve(nfs_.size() + 1);
  for (std::size_t i = 0; i <= nfs_.size(); ++i)
    rings_.push_back(std::make_unique<SpscRing<Packet*>>(ring_capacity));
}

std::vector<hwmodel::NfCostProfile> ServiceChain::cost_profiles() const {
  std::vector<hwmodel::NfCostProfile> profiles;
  profiles.reserve(nfs_.size());
  for (const auto& nf : nfs_) profiles.push_back(nf->profile());
  return profiles;
}

bool ServiceChain::process_inline(Packet& pkt) {
  for (auto& nf : nfs_) {
    if (pkt.dropped()) return false;
    Packet* ptr = &pkt;
    nf->process_batch(std::span<Packet* const>(&ptr, 1));
  }
  return !pkt.dropped();
}

std::size_t ServiceChain::process_batch_inline(
    std::span<Packet* const> batch) {
  for (auto& nf : nfs_) nf->process_batch(batch);
  std::size_t delivered = 0;
  for (const Packet* pkt : batch)
    if (!pkt->dropped()) ++delivered;
  return delivered;
}

std::uint64_t ServiceChain::total_nf_drops() const {
  std::uint64_t drops = 0;
  for (const auto& nf : nfs_) drops += nf->dropped();
  return drops;
}

void ServiceChain::reset_stats() {
  for (auto& nf : nfs_) nf->reset_stats();
}

std::vector<std::string> standard_chain_nfs(int variant) {
  switch (variant % 3) {
    case 0: return {"firewall", "router", "ids"};
    case 1: return {"firewall", "nat", "tunnel_gw"};
    default: return {"flow_monitor", "router", "epc"};
  }
}

}  // namespace greennfv::nfvsim
