#include "nfvsim/engine_threaded.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace greennfv::nfvsim {

ThreadedEngine::ThreadedEngine(OnvmController& controller, Options options)
    : controller_(controller), options_(options) {
  GNFV_REQUIRE(controller_.num_chains() > 0, "ThreadedEngine: no chains");
  GNFV_REQUIRE(options_.total_packets > 0, "ThreadedEngine: zero packets");
}

ThreadedRunReport ThreadedEngine::run(
    const std::vector<traffic::FlowSpec>& flows, std::uint64_t seed) {
  GNFV_REQUIRE(!flows.empty(), "ThreadedEngine::run: no flows");
  for (const auto& flow : flows) {
    GNFV_REQUIRE(flow.chain_index >= 0 &&
                     static_cast<std::size_t>(flow.chain_index) <
                         controller_.num_chains(),
                 "ThreadedEngine: flow references unknown chain");
  }

  const std::size_t n_chains = controller_.num_chains();
  Mempool pool(options_.pool_capacity);

  ThreadedRunReport report;
  report.per_chain_delivered.assign(n_chains, 0);

  std::atomic<bool> generator_done{false};
  std::atomic<std::uint64_t> generated{0};
  std::atomic<std::uint64_t> pool_exhausted{0};
  std::atomic<std::uint64_t> rx_ring_drops{0};
  std::vector<std::atomic<std::uint64_t>> delivered(n_chains);
  std::vector<std::atomic<std::uint64_t>> consumed(n_chains);
  for (auto& d : delivered) d.store(0);
  for (auto& c : consumed) c.store(0);

  const bool hybrid = controller_.sched_mode() == SchedMode::kHybrid;

  // --- worker threads: one per chain -----------------------------------------
  std::vector<std::thread> workers;
  workers.reserve(n_chains);
  for (std::size_t c = 0; c < n_chains; ++c) {
    workers.emplace_back([&, c] {
      ServiceChain& chain = controller_.chain(c);
      SpscRing<Packet*>& rx = chain.ring(0);
      const std::uint32_t batch = controller_.knobs(c).batch;
      std::vector<Packet*> burst(batch);
      int idle_polls = 0;
      for (;;) {
        const std::size_t n =
            rx.try_pop_bulk(std::span<Packet*>(burst.data(), batch));
        if (n == 0) {
          if (generator_done.load(std::memory_order_acquire) && rx.empty())
            break;
          // Hybrid mode sleeps on sustained emptiness (the paper puts NFs
          // to sleep "until a new packet arrives"); poll mode spins.
          if (hybrid && ++idle_polls > 64) {
            std::this_thread::sleep_for(std::chrono::microseconds(20));
          } else if (hybrid) {
            std::this_thread::yield();
          }
          continue;
        }
        idle_polls = 0;
        const auto span = std::span<Packet* const>(burst.data(), n);
        const std::size_t ok = chain.process_batch_inline(span);
        delivered[c].fetch_add(ok, std::memory_order_relaxed);
        consumed[c].fetch_add(n, std::memory_order_relaxed);
        for (std::size_t i = 0; i < n; ++i) pool.free(burst[i]);
      }
    });
  }

  // --- generator / RX thread ---------------------------------------------------
  const auto t0 = std::chrono::steady_clock::now();
  std::thread generator([&] {
    Rng rng(seed);
    std::uint64_t next_id = 0;
    std::uint64_t injected = 0;
    std::size_t flow_cursor = 0;
    while (injected < options_.total_packets) {
      const traffic::FlowSpec& flow = flows[flow_cursor];
      flow_cursor = (flow_cursor + 1) % flows.size();
      const std::size_t burst = std::min<std::uint64_t>(
          options_.gen_burst, options_.total_packets - injected);
      for (std::size_t i = 0; i < burst; ++i) {
        Packet* pkt = pool.alloc();
        if (pkt == nullptr) {
          // NIC would drop on mbuf exhaustion.
          pool_exhausted.fetch_add(1, std::memory_order_relaxed);
          ++injected;
          continue;
        }
        pkt->id = next_id++;
        pkt->flow_id = static_cast<std::uint32_t>(flow.id);
        pkt->frame_bytes = flow.pkt_bytes;
        pkt->rx_ts_ns = 0;
        pkt->chain_pos = 0;
        pkt->flags = 0;
        pkt->src_ip = 0xC0A80000u | static_cast<std::uint32_t>(
                                        rng.uniform_u64(4096));
        pkt->dst_ip = 0x0A010100u | static_cast<std::uint32_t>(
                                        rng.uniform_u64(256));
        pkt->src_port =
            static_cast<std::uint16_t>(1024 + rng.uniform_u64(60000));
        pkt->dst_port = static_cast<std::uint16_t>(rng.uniform_u64(9000));
        pkt->ip_proto = flow.proto == traffic::Protocol::kTcp ? 6 : 17;
        pkt->ttl = 64;
        pkt->payload_digest = pkt->id * 0x9E3779B97F4A7C15ull;

        SpscRing<Packet*>& rx = controller_
                                    .chain(static_cast<std::size_t>(
                                        flow.chain_index))
                                    .ring(0);
        // Bounded retry: real NICs buffer briefly, then tail-drop.
        bool pushed = false;
        for (int attempt = 0; attempt < 128 && !pushed; ++attempt) {
          pushed = rx.try_push(pkt);
          if (!pushed) std::this_thread::yield();
        }
        if (!pushed) {
          rx_ring_drops.fetch_add(1, std::memory_order_relaxed);
          pool.free(pkt);
        }
        ++injected;
      }
      generated.store(injected, std::memory_order_relaxed);
    }
    generated.store(injected, std::memory_order_relaxed);
    generator_done.store(true, std::memory_order_release);
  });

  generator.join();
  for (auto& worker : workers) worker.join();
  const auto t1 = std::chrono::steady_clock::now();

  report.generated = generated.load();
  report.pool_exhausted = pool_exhausted.load();
  report.rx_ring_drops = rx_ring_drops.load();
  for (std::size_t c = 0; c < n_chains; ++c) {
    report.per_chain_delivered[c] = delivered[c].load();
    report.delivered += delivered[c].load();
    report.nf_drops += consumed[c].load() - delivered[c].load();
  }
  // Pool-exhausted packets never entered a ring; fold them into generated
  // accounting as RX drops for the conservation check.
  report.nf_drops += 0;
  report.rx_ring_drops += report.pool_exhausted;
  report.wall_seconds =
      std::chrono::duration<double>(t1 - t0).count();
  report.delivered_pps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.delivered) / report.wall_seconds
          : 0.0;
  GNFV_ASSERT(pool.in_use() == 0, "ThreadedEngine: leaked packets");
  return report;
}

}  // namespace greennfv::nfvsim
