#include "nfvsim/engine_analytic.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace greennfv::nfvsim {

AnalyticEngine::AnalyticEngine(OnvmController& controller,
                               traffic::TrafficGenerator generator)
    : controller_(controller),
      generator_(std::move(generator)),
      node_model_(controller.spec()) {
  GNFV_REQUIRE(controller_.num_chains() > 0,
               "AnalyticEngine: controller has no chains");
  for (const auto& flow : generator_.flows()) {
    GNFV_REQUIRE(
        flow.chain_index >= 0 &&
            static_cast<std::size_t>(flow.chain_index) <
                controller_.num_chains(),
        "AnalyticEngine: flow references a chain the controller lacks");
  }
}

std::vector<hwmodel::ChainWorkload> AnalyticEngine::chain_workloads(
    const traffic::WindowLoad& load) const {
  const std::size_t n_chains = controller_.num_chains();
  std::vector<double> pps(n_chains, 0.0);
  std::vector<double> byte_weight(n_chains, 0.0);
  const auto& flows = generator_.flows();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto chain = static_cast<std::size_t>(flows[i].chain_index);
    pps[chain] += load.per_flow_pps[i];
    byte_weight[chain] += load.per_flow_pps[i] * flows[i].pkt_bytes;
  }
  std::vector<hwmodel::ChainWorkload> workloads(n_chains);
  for (std::size_t c = 0; c < n_chains; ++c) {
    workloads[c].offered_pps = pps[c];
    workloads[c].pkt_bytes =
        pps[c] > 0.0
            ? static_cast<std::uint32_t>(
                  std::clamp(byte_weight[c] / pps[c], 64.0, 1518.0))
            : 1024;
  }
  return workloads;
}

WindowMetrics AnalyticEngine::step(double dt) {
  GNFV_REQUIRE(dt > 0.0, "AnalyticEngine::step: dt must be positive");

  const traffic::WindowLoad load = generator_.next_window(dt);
  const auto workloads = chain_workloads(load);
  WindowMetrics metrics;
  metrics.t_start_s = time_s_;
  metrics.dt_s = dt;
  metrics.offered_pps = load.total_pps;
  metrics.node = node_model_.evaluate(controller_.deployments(workloads),
                                      controller_.use_cat());
  metrics.energy_j = metrics.node.power_w * dt;
  meter_.accumulate(metrics.node.power_w, dt);
  time_s_ += dt;

  // Close the TCP loop: attribute each chain's goodput/drops to its flows
  // proportionally to their share of the chain's offered load.
  const auto& flows = generator_.flows();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto chain = static_cast<std::size_t>(flows[i].chain_index);
    const double chain_offered = workloads[chain].offered_pps;
    if (chain_offered <= 0.0) continue;
    const double share = load.per_flow_pps[i] / chain_offered;
    const auto& eval = metrics.node.chains[chain].eval;
    generator_.report_feedback(i, eval.goodput_pps * share,
                               eval.drop_pps * share);
  }
  return metrics;
}

AnalyticEngine::RunSummary AnalyticEngine::run(int windows, double dt) {
  GNFV_REQUIRE(windows > 0, "AnalyticEngine::run: windows must be positive");
  RunSummary summary;
  const std::size_t n_chains = controller_.num_chains();
  summary.chain_gbps.assign(n_chains, 0.0);
  summary.chain_arrival_pps.assign(n_chains, 0.0);
  summary.chain_energy_j.assign(n_chains, 0.0);
  summary.chain_busy_cores.assign(n_chains, 0.0);

  double goodput_pps_sum = 0.0;
  double offered_pps_sum = 0.0;
  for (int w = 0; w < windows; ++w) {
    const WindowMetrics m = step(dt);
    summary.duration_s += dt;
    summary.mean_gbps += m.total_gbps();
    summary.mean_power_w += m.power_w();
    summary.energy_j += m.energy_j;
    summary.mean_utilization += m.utilization();
    offered_pps_sum += m.offered_pps;
    goodput_pps_sum += m.node.total_goodput_pps;
    for (std::size_t c = 0; c < n_chains; ++c) {
      summary.chain_gbps[c] += m.node.chains[c].eval.throughput_gbps;
      summary.chain_arrival_pps[c] +=
          m.node.chains[c].eval.goodput_pps + m.node.chains[c].eval.drop_pps;
      summary.chain_energy_j[c] += m.node.chains[c].power_w * dt;
      summary.chain_busy_cores[c] += m.node.chains[c].eval.busy_cores;
    }
  }
  const auto n = static_cast<double>(windows);
  summary.mean_gbps /= n;
  summary.mean_power_w /= n;
  summary.mean_utilization /= n;
  summary.mean_offered_pps = offered_pps_sum / n;
  summary.mean_goodput_pps = goodput_pps_sum / n;
  summary.drop_fraction =
      offered_pps_sum > 0.0
          ? std::max(0.0, 1.0 - goodput_pps_sum / offered_pps_sum)
          : 0.0;
  for (std::size_t c = 0; c < n_chains; ++c) {
    summary.chain_gbps[c] /= n;
    summary.chain_arrival_pps[c] /= n;
    summary.chain_busy_cores[c] /= n;
  }
  return summary;
}

void AnalyticEngine::reset(std::uint64_t seed) {
  generator_.reset(seed);
  meter_ = hwmodel::EnergyMeter{};
  time_s_ = 0.0;
}

}  // namespace greennfv::nfvsim
