#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "nfvsim/packet.hpp"
#include "nfvsim/ring.hpp"

/// \file mempool.hpp
/// Fixed-capacity packet pool in the style of rte_mempool: all Packet
/// objects are pre-allocated in one contiguous slab; a lock-free MPMC
/// freelist hands out pointers. Exhaustion returns nullptr (the NIC drops),
/// never allocates.

namespace greennfv::nfvsim {

class Mempool {
 public:
  explicit Mempool(std::size_t capacity);

  Mempool(const Mempool&) = delete;
  Mempool& operator=(const Mempool&) = delete;

  /// Takes a packet from the pool; nullptr when exhausted.
  [[nodiscard]] Packet* alloc();

  /// Returns a packet to the pool. Must have come from this pool.
  void free(Packet* pkt);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Packets currently out in the wild.
  [[nodiscard]] std::size_t in_use() const {
    return in_use_.load(std::memory_order_relaxed);
  }

  /// True if `pkt` points into this pool's slab (used by debug checks).
  [[nodiscard]] bool owns(const Packet* pkt) const;

 private:
  std::size_t capacity_;
  std::vector<Packet> slab_;
  MpmcQueue<Packet*> freelist_;
  std::atomic<std::size_t> in_use_{0};
};

}  // namespace greennfv::nfvsim
