#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include "common/assert.hpp"

/// \file ring.hpp
/// Lock-free bounded queues modelled on DPDK's rte_ring:
///
///   * SpscRing  — single-producer/single-consumer, the per-NF RX/TX queues
///                 (OpenNetVM gives every NF two circular queues).
///   * MpmcQueue — Vyukov bounded MPMC, used for the shared mempool freelist
///                 and the Ape-X experience hand-off.
///
/// Both are power-of-two sized, cache-line-pad their indices to avoid false
/// sharing, and support bulk transfer (DPDK's burst enqueue/dequeue) since
/// batching is one of the paper's five knobs.

namespace greennfv::nfvsim {

/// Destructive-interference distance. Pinned to 64 (x86-64) rather than
/// std::hardware_destructive_interference_size so the layout is ABI-stable
/// across compiler versions and -mtune settings.
inline constexpr std::size_t kCacheLine = 64;

[[nodiscard]] constexpr std::size_t next_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; one slot is *not* wasted
  /// (indices are free-running counters).
  explicit SpscRing(std::size_t capacity)
      : slots_(next_pow2(capacity)), mask_(slots_.size() - 1) {
    GNFV_REQUIRE(capacity >= 2, "SpscRing: capacity too small");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_cache_;
    if (tail - head >= slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_cache_;
    if (head >= tail) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head >= tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Burst enqueue: pushes as many items as fit; returns the count pushed.
  std::size_t try_push_bulk(std::span<const T> items) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t head = head_cache_;
    if (tail + items.size() - head > slots_.size()) {
      head_cache_ = head = head_.load(std::memory_order_acquire);
    }
    const std::size_t free_slots = slots_.size() - (tail - head);
    const std::size_t n = std::min(items.size(), free_slots);
    for (std::size_t i = 0; i < n; ++i) slots_[(tail + i) & mask_] = items[i];
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Burst dequeue into `out`; returns the count popped.
  std::size_t try_pop_bulk(std::span<T> out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t tail = tail_cache_;
    if (head + out.size() > tail) {
      tail_cache_ = tail = tail_.load(std::memory_order_acquire);
    }
    const std::size_t available = tail - head;
    const std::size_t n = std::min(out.size(), available);
    for (std::size_t i = 0; i < n; ++i)
      out[i] = std::move(slots_[(head + i) & mask_]);
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Approximate occupancy (exact only when quiescent).
  [[nodiscard]] std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::size_t tail_cache_ = 0;  // consumer-local
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  alignas(kCacheLine) std::size_t head_cache_ = 0;  // producer-local
};

/// Dmitry Vyukov's bounded MPMC queue.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : cells_(next_pow2(capacity)), mask_(cells_.size() - 1) {
    GNFV_REQUIRE(capacity >= 2, "MpmcQueue: capacity too small");
    for (std::size_t i = 0; i < cells_.size(); ++i)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  bool try_push(T value) {
    Cell* cell = nullptr;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(T& out) {
    Cell* cell = nullptr;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const { return cells_.size(); }

  /// Approximate occupancy.
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t enq = enqueue_pos_.load(std::memory_order_acquire);
    const std::size_t deq = dequeue_pos_.load(std::memory_order_acquire);
    return enq >= deq ? enq - deq : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_;
  alignas(kCacheLine) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(kCacheLine) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace greennfv::nfvsim
