#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "nfvsim/controller.hpp"
#include "nfvsim/mempool.hpp"
#include "traffic/flow.hpp"

/// \file engine_threaded.hpp
/// The real multi-threaded data path: a generator/RX thread allocates
/// packets from the shared mempool and bursts them into each chain's RX
/// ring; one worker thread per chain polls its ring in batches (the batch
/// knob), runs the packets through the chain's NFs inline, counts
/// deliveries, and returns packets to the pool. In hybrid mode workers
/// back off (yield/sleep) on empty polls — the paper's callback+polling
/// mix; in poll mode they spin.
///
/// This engine is about *correctness of the plumbing* (conservation,
/// backpressure, burst handling), not about reproducing the paper's
/// absolute numbers — those come from the calibrated analytic engine.

namespace greennfv::nfvsim {

struct ThreadedRunReport {
  std::uint64_t generated = 0;       ///< packets the generator injected
  std::uint64_t pool_exhausted = 0;  ///< allocation failures (NIC drop)
  std::uint64_t rx_ring_drops = 0;   ///< RX ring full (backpressure drop)
  std::uint64_t delivered = 0;       ///< packets that cleared the chain
  std::uint64_t nf_drops = 0;        ///< dropped by NF logic (ACL, TTL...)
  double wall_seconds = 0.0;
  double delivered_pps = 0.0;
  std::vector<std::uint64_t> per_chain_delivered;

  /// Conservation check: everything injected is accounted for.
  [[nodiscard]] bool conserved() const {
    return generated == delivered + nf_drops + rx_ring_drops;
  }
};

class ThreadedEngine {
 public:
  struct Options {
    /// Total packets to inject across all flows.
    std::uint64_t total_packets = 100000;
    /// Mempool capacity (pool pressure creates allocation drops).
    std::size_t pool_capacity = 8192;
    /// Generator burst size per flow per round.
    std::size_t gen_burst = 64;
  };

  ThreadedEngine(OnvmController& controller, Options options);

  /// Injects `options.total_packets` split round-robin over `flows` and
  /// runs until every packet is delivered, dropped, or accounted. The
  /// batch knob of each chain controls worker poll size.
  ThreadedRunReport run(const std::vector<traffic::FlowSpec>& flows,
                        std::uint64_t seed);

 private:
  OnvmController& controller_;
  Options options_;
};

}  // namespace greennfv::nfvsim
