/// Reproduces Figure 1: "Micro-benchmarking of LLC size: effect of LLC on
/// NF throughput and energy consumption."
///
/// Two chains share one node. C1 carries 13 Mpps of small frames through a
/// cache-hungry chain; C2 carries 1 Mpps. Four CAT splits — (90,10),
/// (70,30), (40,60), (20,80) — are evaluated; for each we report the LLC
/// miss behaviour, achieved throughput (wire Gbps, as MoonGen counts line
/// rate), and energy per million delivered packets.
///
/// Expected shape (paper): C1 is healthy at (90,10) and collapses as its
/// slice shrinks — miss rate and energy/MP rise sharply — while the
/// low-rate C2 is insensitive.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "hwmodel/node.hpp"

using namespace greennfv;
using namespace greennfv::hwmodel;

namespace {

ChainDeployment make_c1(double llc_fraction) {
  ChainDeployment dep;
  // NAT -> router -> content cache: ~9.5 MiB of resident state, light
  // per-packet cycles — throughput depends on keeping that state cached,
  // which is exactly what Fig. 1 measures. The cache NF is a bench-local
  // profile (table-heavy, cheap per packet).
  NfCostProfile cdn_cache;
  cdn_cache.name = "cdn_cache";
  cdn_cache.base_cycles = 300.0;
  cdn_cache.cycles_per_byte = 0.0;
  cdn_cache.mem_refs_per_pkt = 12.0;
  cdn_cache.state_bytes = 8ull * units::kMiB;
  dep.nfs = {nf_catalog::nat(), nf_catalog::router(), cdn_cache};
  dep.workload.offered_pps = 13e6;  // paper: "input flows ... are 13 Mpps"
  dep.workload.pkt_bytes = 64;
  dep.cores = 12.0;
  dep.freq_ghz = 2.1;
  dep.llc_fraction = llc_fraction;
  dep.dma_bytes = 24ull << 20;  // enough ring slots for 13 Mpps of 64 B
  dep.batch = 64;
  dep.poll_mode = true;
  return dep;
}

ChainDeployment make_c2(double llc_fraction) {
  ChainDeployment dep;
  dep.nfs = {nf_catalog::firewall(), nf_catalog::nat(),
             nf_catalog::flow_monitor()};
  dep.workload.offered_pps = 1e6;  // "and 1 Mpps, respectively"
  dep.workload.pkt_bytes = 128;
  dep.cores = 2.0;
  dep.freq_ghz = 2.1;
  dep.llc_fraction = llc_fraction;
  dep.dma_bytes = 1ull << 20;
  dep.batch = 64;
  dep.poll_mode = true;
  return dep;
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  if (bench::handle_cli(config, {})) return 0;
  bench::banner("Figure 1", "LLC partitioning between two chains", config);
  bench::Perf perf("fig1_llc_allocation");

  const NodeModel node;
  // The paper's four allocations (x% to C1, y% to C2).
  const std::pair<double, double> splits[] = {
      {0.9, 0.1}, {0.7, 0.3}, {0.4, 0.6}, {0.2, 0.8}};

  std::vector<std::vector<std::string>> rows;
  telemetry::Recorder recorder;
  int idx = 0;
  for (const auto& [c1_frac, c2_frac] : splits) {
    const auto eval =
        node.evaluate({make_c1(c1_frac), make_c2(c2_frac)}, true);
    const auto& c1 = eval.chains[0];
    const auto& c2 = eval.chains[1];
    // "LLC Miss rate" reported as misses per 10k packet references.
    const double c1_miss = c1.eval.miss_ratio * 1e4;
    const double c2_miss = c2.eval.miss_ratio * 1e4;
    rows.push_back({format("(%.0f%%,%.0f%%)", c1_frac * 100, c2_frac * 100),
                    format_double(c1_miss, 0), format_double(c2_miss, 0),
                    format_double(c1.eval.wire_gbps, 2),
                    format_double(c2.eval.wire_gbps, 2),
                    format_double(c1.energy_per_mpkt_j, 1),
                    format_double(c2.energy_per_mpkt_j, 1)});
    recorder.record("c1_wire_gbps", idx, c1.eval.wire_gbps);
    recorder.record("c2_wire_gbps", idx, c2.eval.wire_gbps);
    recorder.record("c1_miss_per10k", idx, c1_miss);
    recorder.record("c2_miss_per10k", idx, c2_miss);
    recorder.record("c1_energy_per_mpkt", idx, c1.energy_per_mpkt_j);
    recorder.record("c2_energy_per_mpkt", idx, c2.energy_per_mpkt_j);
    perf.add_windows(1);
    ++idx;
  }

  bench::print_table({"alloc(C1,C2)", "miss/10k C1", "miss/10k C2",
                      "Gbps C1", "Gbps C2", "J/Mpkt C1", "J/Mpkt C2"},
                     rows);

  std::printf(
      "\nshape check: C1 throughput should fall and its miss rate and\n"
      "energy/Mpkt rise as its slice shrinks from 90%% to 20%%; C2 stays"
      " flat.\n");
  bench::dump_csv(recorder, "fig1_llc_allocation");
  return 0;
}
