/// Reproduces Figure 6: "Training progress of the proposed reinforcement
/// learning algorithm during the testing of the Maximum Throughput SLA."
///
/// The agent maximizes aggregate throughput subject to E <= 2000 J per
/// measurement window ("We set the maximum energy threshold to 2000 Joules
/// and use five flows"). Panels (a)-(g): throughput, energy, CPU usage,
/// core frequency, LLC allocation, DMA buffer size, and packet batch size
/// per training episode.
///
/// Expected shape (paper): throughput climbs while energy is pinned below
/// the 2000 J budget; batch size, LLC allocation, and DMA size ramp up
/// (they buy throughput nearly for free); CPU allocation and frequency do
/// the energy balancing.
///
/// Overrides: episodes=N seed=K energy_budget=J replay=uniform|per ...

#include "bench/train_util.hpp"

using namespace greennfv;

int main(int argc, char** argv) {
  Config config = Config::from_args(argc, argv);
  if (bench::handle_cli(
          config,
          bench::keys_plus(scenario::ScenarioSpec::known_keys(),
                           {"table_rows", "replay"}),
          scenario::ScenarioSpec::known_prefixes()))
    return 0;
  if (config.get_string("replay", "per") == "uniform")
    config.set("prioritized", "0");
  (void)bench::run_training_figure(
      "Figure 6", "Maximum Throughput SLA training progress",
      core::SlaKind::kMaxThroughput, config,
      /*show_efficiency=*/false, "fig6_maxth_training");
  return 0;
}
