/// Fleet-engine throughput benchmark: how fast the discrete-event engine
/// builds a fleet history, in events/sec. The default scale is the
/// mega-fleet preset (10k nodes, ~1.05M arrivals over 420 windows); the
/// window-synchronous reference engine is timed on a reduced geometry
/// (500 nodes, ~50k arrivals — it is O(nodes x windows x roster scans)
/// and would take hours at mega scale), where the two engines are also
/// checked bit-identical before any rate is reported. Writes
/// out/BENCH_fleet.json with events/sec and speedup_vs_reference so the
/// perf trajectory has a fleet data point PR over PR.
///
/// Keys:
///   smoke=0         1 = CI-sized run: skip the mega build, report
///                   events/sec from the 500-node comparison geometry
///   baseline=<path> compare against a checked-in BENCH_fleet.json;
///                   warns (exit 0) on >warn_pct% speedup regression
///   warn_pct=30
///   trace=<path>    write the headline build's Perfetto trace JSON
///   trace_check=0   1 = rebuild the headline geometry with the span
///                   tracer runtime-enabled and report its overhead
///                   (warn-only against overhead_budget_pct)
///   series_check=0  1 = rebuild the headline geometry with the
///                   per-window health series sampler enabled and report
///                   its overhead (same warn-only budget)
///   overhead_budget_pct=5
///
/// The flight recorder's counter registry is enabled for the whole
/// benchmark, so the Perf JSON carries an engine phase breakdown
/// (phase_build_s / phase_arrival_s / phase_consolidate_s /
/// phase_account_s) next to the headline events/sec.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"
#include "orchestrator/fleet.hpp"
#include "orchestrator/fleet_reference.hpp"
#include "orchestrator/timeline_io.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/series.hpp"
#include "telemetry/trace.hpp"

using namespace greennfv;
using namespace greennfv::orchestrator;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Discrete events in a built history: every placement attempt, holding
/// expiry, migration, wake-up, and per-window tick round.
double events_of(const FleetTimeline& timeline) {
  return static_cast<double>(timeline.arrivals) + timeline.rejected +
         timeline.departures + timeline.migrations + timeline.wakeups +
         static_cast<double>(timeline.windows.size());
}

double baseline_metric(const std::string& path, const std::string& key) {
  try {
    const Json json = Json::parse(read_file(path));
    if (!json.has(key)) return 0.0;
    return json.at(key).as_double();
  } catch (const std::exception& e) {
    std::printf("[baseline] unreadable (%s)\n", e.what());
    return 0.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  if (bench::handle_cli(config, {"smoke", "baseline", "warn_pct", "trace",
                                 "trace_check", "series_check",
                                 "overhead_budget_pct"}))
    return 0;
  bench::banner("bench_fleet", "discrete-event fleet engine throughput",
                config);
  bench::Perf perf("fleet");

  const bool smoke = config.get_bool("smoke", false);
  telemetry::metrics::set_enabled(true);

  // Comparison geometry: mega-fleet shape shrunk to where the reference
  // engine is still timeable (~50k arrivals across 500 nodes).
  scenario::ScenarioSpec small = scenario::preset("mega-fleet");
  small.num_nodes = 500;
  small.fleet.arrival_rate = 120.0;

  // --- event engine vs window-synchronous reference (reduced scale) --------
  const auto small_start = std::chrono::steady_clock::now();
  FleetOrchestrator small_engine(small);
  const double small_s = seconds_since(small_start);
  const double small_events = events_of(small_engine.timeline());

  const auto ref_start = std::chrono::steady_clock::now();
  const FleetTimeline reference = build_reference_timeline(small);
  const double ref_s = seconds_since(ref_start);

  if (timeline_to_text(small_engine.timeline(), small.num_nodes) !=
      timeline_to_text(reference, small.num_nodes)) {
    GNFV_LOG_ERROR("bench_fleet")
        << "FATAL: event engine diverged from the reference engine on the"
           " comparison geometry — throughput numbers would be"
           " meaningless; run the golden/determinism suites";
    return 1;
  }
  const double speedup = ref_s / small_s;
  std::printf("comparison (%d nodes, %.0f events): bit-identical; event "
              "engine %.2f s vs reference %.2f s  (%.1fx)\n",
              small.num_nodes, small_events, small_s, ref_s, speedup);

  // --- headline scale -------------------------------------------------------
  // Counters reset here so the phase breakdown reflects the headline
  // build alone, not the comparison pass above.
  telemetry::metrics::reset();
  double wall_s = small_s;
  double events = small_events;
  scenario::ScenarioSpec spec = small;
  if (smoke) {
    // Re-run the smoke geometry under the (now-reset) registry so the
    // phase breakdown covers the reported build.
    const auto start = std::chrono::steady_clock::now();
    const FleetOrchestrator engine(small);
    wall_s = seconds_since(start);
    events = events_of(engine.timeline());
  }
  if (!smoke) {
    spec = scenario::preset("mega-fleet");
    const auto start = std::chrono::steady_clock::now();
    const FleetOrchestrator engine(spec);
    wall_s = seconds_since(start);
    events = events_of(engine.timeline());
    const FleetTimeline& t = engine.timeline();
    std::printf("mega-fleet: %d arrivals (%d rejected), %d departures, %d "
                "migrations, %d wakeups over %zu windows\n",
                t.arrivals, t.rejected, t.departures, t.migrations,
                t.wakeups, t.windows.size());
  }
  const double rate = events / wall_s;
  std::printf("%s: %.0f events in %.2f s  = %.0f events/s\n",
              smoke ? "smoke geometry" : "mega-fleet", events, wall_s, rate);

  perf.add_windows(static_cast<double>(spec.fleet.horizon_windows));
  perf.add_metric("nodes", static_cast<double>(spec.num_nodes));
  perf.add_metric("events", events);
  perf.add_metric("events_per_sec", rate);
  perf.add_metric("build_wall_s", wall_s);
  perf.add_metric("reference_wall_s", ref_s);
  perf.add_metric("speedup_vs_reference", speedup);

  // --- flight-recorder phase breakdown --------------------------------------
  // Span timers accumulate whenever metrics are on (tracing itself stays
  // off), so the headline build's time splits by engine phase for free.
  const telemetry::metrics::Snapshot snap = telemetry::metrics::snapshot();
  const double build_ns = snap.value("fleet.phase.build_ns");
  const double arrival_ns = snap.value("fleet.phase.arrival_ns");
  const double consolidate_ns = snap.value("fleet.phase.consolidate_ns");
  const double account_ns = snap.value("fleet.phase.account_ns");
  perf.add_metric("phase_build_s", build_ns / 1e9);
  perf.add_metric("phase_arrival_s", arrival_ns / 1e9);
  perf.add_metric("phase_consolidate_s", consolidate_ns / 1e9);
  perf.add_metric("phase_account_s", account_ns / 1e9);
  if (build_ns > 0.0) {
    std::printf("phase breakdown: arrival %.0f%%, consolidate %.0f%%, "
                "account %.0f%% of %.2f s build (%.0f departures popped)\n",
                100.0 * arrival_ns / build_ns,
                100.0 * consolidate_ns / build_ns,
                100.0 * account_ns / build_ns, build_ns / 1e9,
                snap.value("fleet.events.departure"));
  }

  // --- optional traced rebuild: Perfetto artifact + overhead gate -----------
  const std::string trace_path_arg = config.get_string("trace", "");
  const bool trace_check = config.get_bool("trace_check", false);
  if (!trace_path_arg.empty() || trace_check) {
#if GREENNFV_TRACING_ENABLED
    telemetry::trace::set_enabled(true);
    const auto traced_start = std::chrono::steady_clock::now();
    const FleetOrchestrator traced_engine(spec);
    const double traced_s = seconds_since(traced_start);
    telemetry::trace::set_enabled(false);
    (void)traced_engine;
    if (!trace_path_arg.empty()) {
      const std::string path = trace_path_arg.find('/') == std::string::npos
                                   ? out_path(trace_path_arg)
                                   : trace_path_arg;
      telemetry::trace::write_json(path);
      std::printf("[trace] wrote %s (%zu events, %llu dropped)\n",
                  path.c_str(), telemetry::trace::recorded(),
                  static_cast<unsigned long long>(
                      telemetry::trace::dropped()));
    }
    if (trace_check) {
      const double budget_pct =
          config.get_double("overhead_budget_pct", 5.0);
      const double overhead_pct =
          wall_s > 0.0 ? 100.0 * (traced_s - wall_s) / wall_s : 0.0;
      perf.add_metric("trace_overhead_pct", overhead_pct);
      std::printf("[trace_check] traced build %.2f s vs %.2f s untraced "
                  "= %+.1f%% overhead (budget %.0f%%)\n",
                  traced_s, wall_s, overhead_pct, budget_pct);
      if (overhead_pct > budget_pct) {
        std::printf("WARNING: tracing overhead %.1f%% exceeds the %.0f%% "
                    "budget — span granularity is too fine for this "
                    "scale; warn-only, not failing the bench\n",
                    overhead_pct, budget_pct);
      }
    }
    telemetry::trace::reset();
#else
    std::printf("[trace_check] skipped: tracer compiled out "
                "(GREENNFV_TRACING=OFF)\n");
#endif
  }

  // --- optional sampled rebuild: series overhead gate -----------------------
  // Same shape as trace_check: rebuild the headline geometry with the
  // per-window health sampler armed and compare wall clocks. The sampler
  // appends one 34-double row per accounting window into an arena, so
  // this should be deep inside the budget — the check exists to catch a
  // future column that accidentally does per-event work.
  if (config.get_bool("series_check", false)) {
    const double budget_pct = config.get_double("overhead_budget_pct", 5.0);
    telemetry::series::set_enabled(true);
    const auto sampled_start = std::chrono::steady_clock::now();
    const FleetOrchestrator sampled_engine(spec);
    const double sampled_s = seconds_since(sampled_start);
    telemetry::series::set_enabled(false);
    const auto& series = sampled_engine.timeline().series;
    if (series == nullptr) {
      GNFV_LOG_ERROR("bench_fleet")
          << "series_check: sampler enabled but timeline carries no"
             " series";
      return 1;
    }
    const double overhead_pct =
        wall_s > 0.0 ? 100.0 * (sampled_s - wall_s) / wall_s : 0.0;
    perf.add_metric("series_overhead_pct", overhead_pct);
    std::printf("[series_check] sampled build %.2f s vs %.2f s unsampled "
                "= %+.1f%% overhead (%zu windows x %zu columns, budget "
                "%.0f%%)\n",
                sampled_s, wall_s, overhead_pct, series->num_rows(),
                series->num_columns(), budget_pct);
    if (overhead_pct > budget_pct) {
      std::printf("WARNING: series sampling overhead %.1f%% exceeds the "
                  "%.0f%% budget — a column is doing per-event work; "
                  "warn-only, not failing the bench\n",
                  overhead_pct, budget_pct);
    }
  }

  // --- baseline regression check (warn, never fail) -------------------------
  // speedup_vs_reference is the comparison metric: both sides of the
  // ratio run on the current host in the current binary, so it stays
  // meaningful across machines. Absolute events/s are context only.
  const std::string baseline = config.get_string("baseline", "");
  if (!baseline.empty()) {
    const double warn_pct = config.get_double("warn_pct", 30.0);
    const double base_speedup =
        baseline_metric(baseline, "speedup_vs_reference");
    const double base_rate = baseline_metric(baseline, "events_per_sec");
    if (base_speedup <= 0.0) {
      std::printf("[baseline] %s has no speedup_vs_reference; skipping "
                  "comparison\n",
                  baseline.c_str());
    } else {
      const double delta_pct =
          100.0 * (speedup - base_speedup) / base_speedup;
      std::printf("[baseline] %s: %.1fx speedup (%.0f events/s); fresh "
                  "run %.1fx (%+.1f%%)\n",
                  baseline.c_str(), base_speedup, base_rate, speedup,
                  delta_pct);
      if (delta_pct < -warn_pct) {
        std::printf("WARNING: event-vs-reference speedup regressed %.1f%% "
                    "vs baseline (threshold %.0f%%) — the event engine is "
                    "losing its win; investigate before merging\n",
                    -delta_pct, warn_pct);
      }
    }
  }
  return 0;
}
