/// RL training microbenchmark: DDPG train_step throughput (batched GEMM
/// engine vs the per-sample reference path) and actor inference rate at
/// the paper's network geometry — 6 chains (state 24 / action 30), two
/// 300-unit hidden layers, batch 64. Writes out/BENCH_train.json with
/// train_steps/sec, reference_steps/sec, speedup, and actions/sec so the
/// perf trajectory has an RL data point PR over PR.
///
/// Keys:
///   chains=6 hidden=300 batch=64    network geometry
///   steps=400 ref_steps=60          timed train steps per path
///   actions=20000                   timed actor inference steps
///   smoke=0                         1 = CI-sized run (fewer steps)
///   baseline=<path>                 compare against a checked-in
///                                   BENCH_train.json; warns (exit 0) on
///                                   >warn_pct% train-throughput regression
///   warn_pct=30
///
/// The flight recorder's counter registry is enabled for the batched
/// loop, so the Perf JSON splits train_step time into its four passes
/// (phase_targets_s / phase_critic_s / phase_actor_s / phase_soft_s)
/// and carries gemm_calls / replay_samples for the timed run.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "rl/ddpg.hpp"
#include "rl/replay.hpp"
#include "telemetry/metrics.hpp"

using namespace greennfv;
using namespace greennfv::rl;

namespace {

Transition random_transition(Rng& rng, std::size_t s, std::size_t a) {
  Transition t;
  t.state.resize(s);
  t.action.resize(a);
  t.next_state.resize(s);
  for (double& v : t.state) v = rng.uniform(-1.0, 1.0);
  for (double& v : t.action) v = rng.uniform(-1.0, 1.0);
  for (double& v : t.next_state) v = rng.uniform(-1.0, 1.0);
  t.reward = rng.uniform(-1.0, 1.0);
  t.done = rng.bernoulli(0.05);
  return t;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Loads `key` from a BENCH json, or 0 when absent/unreadable.
double baseline_metric(const std::string& path, const std::string& key) {
  try {
    const Json json = Json::parse(read_file(path));
    if (!json.has(key)) return 0.0;
    return json.at(key).as_double();
  } catch (const std::exception& e) {
    std::printf("[baseline] unreadable (%s)\n", e.what());
    return 0.0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  if (bench::handle_cli(config, {"chains", "hidden", "batch", "steps",
                                 "ref_steps", "actions", "smoke", "baseline",
                                 "warn_pct", "seed"})) {
    return 0;
  }
  bench::banner("bench_train", "DDPG batched training engine throughput",
                config);
  bench::Perf perf("train");

  const bool smoke = config.get_bool("smoke", false);
  const int chains = config.get_int("chains", 6);
  const int hidden = config.get_int("hidden", 300);
  const int batch = config.get_int("batch", 64);
  const int steps = config.get_int("steps", smoke ? 60 : 400);
  const int ref_steps = config.get_int("ref_steps", smoke ? 12 : 60);
  const int action_steps = config.get_int("actions", smoke ? 4000 : 20000);
  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));

  DdpgConfig ddpg;
  // The paper's state/action geometry: 4 signals and 5 knobs per chain.
  ddpg.state_dim = static_cast<std::size_t>(4 * chains);
  ddpg.action_dim = static_cast<std::size_t>(5 * chains);
  ddpg.actor_hidden = {static_cast<std::size_t>(hidden),
                       static_cast<std::size_t>(hidden)};
  ddpg.critic_hidden = ddpg.actor_hidden;
  ddpg.batch_size = static_cast<std::size_t>(batch);

  UniformReplay replay(8192);
  Rng fill_rng(seed ^ 0xF111ull);
  for (int i = 0; i < 4 * batch + 256; ++i) {
    replay.add(random_transition(fill_rng, ddpg.state_dim, ddpg.action_dim),
               0.0);
  }

  // --- per-sample reference path (the pre-batching implementation) ----------
  DdpgAgent reference_agent(ddpg, seed);
  Rng ref_rng(seed ^ 0x5A5Aull);
  for (int i = 0; i < 2; ++i)  // warm up caches
    (void)reference_agent.train_step_reference(replay, ref_rng);
  const auto ref_start = std::chrono::steady_clock::now();
  for (int i = 0; i < ref_steps; ++i)
    (void)reference_agent.train_step_reference(replay, ref_rng);
  const double ref_s = seconds_since(ref_start);
  const double ref_rate = ref_steps / ref_s;

  // --- batched engine -------------------------------------------------------
  DdpgAgent agent(ddpg, seed);
  Rng train_rng(seed ^ 0x5A5Aull);
  for (int i = 0; i < 2; ++i) (void)agent.train_step(replay, train_rng);
  // Counters reset after warm-up so the phase breakdown covers exactly
  // the timed batched loop below (the reference path above is excluded).
  telemetry::metrics::set_enabled(true);
  telemetry::metrics::reset();
  const auto train_start = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) (void)agent.train_step(replay, train_rng);
  const double train_s = seconds_since(train_start);
  const telemetry::metrics::Snapshot snap = telemetry::metrics::snapshot();
  const double train_rate = steps / train_s;
  const double speedup = train_rate / ref_rate;

  // --- actor inference (the per-env-step rollout path) ----------------------
  DdpgAgent::ActScratch scratch;
  std::vector<double> state(ddpg.state_dim, 0.1);
  std::vector<double> action(ddpg.action_dim);
  agent.act_into(state, scratch, action);  // warm up
  const auto act_start = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (int i = 0; i < action_steps; ++i) {
    state[0] = static_cast<double>(i % 7) * 0.1 - 0.3;
    agent.act_into(state, scratch, action);
    sink += action[0];
  }
  const double act_s = seconds_since(act_start);
  const double act_rate = action_steps / act_s;

  std::printf("\nnetwork: state %zu, action %zu, hidden %dx%d, batch %d\n",
              ddpg.state_dim, ddpg.action_dim, hidden, hidden, batch);
  std::printf("reference (per-sample): %5d steps in %6.2f s  = %8.1f "
              "steps/s\n",
              ref_steps, ref_s, ref_rate);
  std::printf("batched GEMM engine:    %5d steps in %6.2f s  = %8.1f "
              "steps/s  (%.2fx)\n",
              steps, train_s, train_rate, speedup);
  const double step_ns = snap.value("rl.phase.train_step_ns");
  if (step_ns > 0.0) {
    std::printf("  phase split: targets %.0f%%, critic %.0f%%, actor "
                "%.0f%%, soft-update %.0f%%  (%.0f GEMMs, %.0f replay "
                "samples)\n",
                100.0 * snap.value("rl.phase.targets_ns") / step_ns,
                100.0 * snap.value("rl.phase.critic_ns") / step_ns,
                100.0 * snap.value("rl.phase.actor_ns") / step_ns,
                100.0 * snap.value("rl.phase.soft_update_ns") / step_ns,
                snap.value("rl.gemm_calls"),
                snap.value("rl.replay_samples"));
  }
  std::printf("actor inference:        %5d acts  in %6.2f s  = %8.0f "
              "actions/s  (checksum %.3f)\n",
              action_steps, act_s, act_rate, sink);

  perf.add_windows(static_cast<double>(steps + ref_steps));
  perf.add_metric("train_steps_per_sec", train_rate);
  perf.add_metric("reference_steps_per_sec", ref_rate);
  perf.add_metric("speedup_vs_reference", speedup);
  perf.add_metric("actions_per_sec", act_rate);
  perf.add_metric("batch", batch);
  perf.add_metric("hidden", hidden);
  perf.add_metric("state_dim", static_cast<double>(ddpg.state_dim));
  perf.add_metric("action_dim", static_cast<double>(ddpg.action_dim));
  perf.add_metric("phase_targets_s", snap.value("rl.phase.targets_ns") / 1e9);
  perf.add_metric("phase_critic_s", snap.value("rl.phase.critic_ns") / 1e9);
  perf.add_metric("phase_actor_s", snap.value("rl.phase.actor_ns") / 1e9);
  perf.add_metric("phase_soft_s",
                  snap.value("rl.phase.soft_update_ns") / 1e9);
  perf.add_metric("gemm_calls", snap.value("rl.gemm_calls"));
  perf.add_metric("replay_samples", snap.value("rl.replay_samples"));

  // --- baseline regression check (warn, never fail) -------------------------
  // The comparison metric is speedup_vs_reference: both sides of that
  // ratio run on the *current* host in the *current* binary, so it stays
  // meaningful on machines slower or faster than the one that recorded
  // the baseline. Absolute steps/s are printed for context only.
  const std::string baseline = config.get_string("baseline", "");
  if (!baseline.empty()) {
    const double warn_pct = config.get_double("warn_pct", 30.0);
    const double base_speedup =
        baseline_metric(baseline, "speedup_vs_reference");
    const double base_rate = baseline_metric(baseline, "train_steps_per_sec");
    if (base_speedup <= 0.0) {
      std::printf("[baseline] %s has no speedup_vs_reference; skipping "
                  "comparison\n",
                  baseline.c_str());
    } else {
      const double delta_pct =
          100.0 * (speedup - base_speedup) / base_speedup;
      std::printf("[baseline] %s: %.2fx speedup (%.1f steps/s); fresh run "
                  "%.2fx (%+.1f%%)\n",
                  baseline.c_str(), base_speedup, base_rate, speedup,
                  delta_pct);
      if (delta_pct < -warn_pct) {
        std::printf("WARNING: batched-vs-reference speedup regressed "
                    "%.1f%% vs baseline (threshold %.0f%%) — the batched "
                    "engine is losing its win; investigate before merging\n",
                    -delta_pct, warn_pct);
      }
    }
  }
  return 0;
}
