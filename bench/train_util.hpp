#pragma once

#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"
#include "core/greennfv.hpp"

/// \file train_util.hpp
/// Shared harness for the training-progress figures (Figs 6-8): builds the
/// paper's evaluation environment (§5: three hosting nodes' worth of 3-NF
/// chains behind one controller, five flows), trains the DDPG policy for
/// the requested SLA while recording every per-episode panel, and prints
/// the panels as one downsampled table.

namespace greennfv::bench {

inline core::EnvConfig standard_env(const Config& config, core::Sla sla) {
  core::EnvConfig env;
  env.num_chains = static_cast<int>(config.get_int("chains", 3));
  env.num_flows = static_cast<int>(config.get_int("flows", 5));
  env.total_offered_gbps = config.get_double("offered_gbps", 12.0);
  env.window_s = config.get_double("window_s", 10.0);
  env.sub_windows = static_cast<int>(config.get_int("sub_windows", 5));
  env.steps_per_episode =
      static_cast<int>(config.get_int("steps_per_episode", 8));
  env.sla = sla;
  return env;
}

inline core::TrainerConfig standard_trainer(const Config& config,
                                            core::Sla sla,
                                            int default_episodes) {
  core::TrainerConfig trainer;
  trainer.env = standard_env(config, sla);
  trainer.episodes =
      static_cast<int>(config.get_int("episodes", default_episodes));
  trainer.seed = static_cast<std::uint64_t>(config.get_int("seed", 42));
  trainer.prioritized_replay = config.get_bool("prioritized", true);
  trainer.noise_sigma = config.get_double("noise_sigma", 0.45);
  trainer.noise_decay = config.get_double("noise_decay", 0.9985);
  return trainer;
}

/// Trains and prints the Fig 6/7/8-style panel table. Returns the result.
inline core::TrainResult run_training_figure(const std::string& figure,
                                             const std::string& title,
                                             core::Sla sla,
                                             const Config& config,
                                             bool show_efficiency,
                                             const std::string& csv_name) {
  banner(figure, title, config);
  core::TrainerConfig trainer_config =
      standard_trainer(config, sla, /*default_episodes=*/800);

  telemetry::Recorder curves;
  core::GreenNfvTrainer trainer(trainer_config);
  const core::TrainResult result = trainer.train(&curves);

  const std::size_t points =
      static_cast<std::size_t>(config.get_int("table_rows", 20));
  const auto col = [&](const std::string& name) {
    return curves.series(name).downsample(points);
  };
  const TimeSeries t = col("throughput_gbps");
  const TimeSeries e = col("energy_j");
  const TimeSeries eff = col("efficiency");
  const TimeSeries cpu = col("cpu_usage_pct");
  const TimeSeries freq = col("core_freq_ghz");
  const TimeSeries llc = col("llc_alloc_pct");
  const TimeSeries dma = col("dma_mib");
  const TimeSeries batch = col("batch");

  std::vector<std::string> header = {"episode", "Gbps", "Energy(J)"};
  if (show_efficiency) header.push_back("Efficiency");
  header.insert(header.end(),
                {"CPU(%)", "Freq(GHz)", "LLC(%)", "DMA(MiB)", "Batch"});
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < t.size(); ++i) {
    std::vector<std::string> row = {format_double(t.times()[i], 0),
                                    format_double(t.values()[i], 2),
                                    format_double(e.values()[i], 0)};
    if (show_efficiency)
      row.push_back(format_double(eff.values()[i], 2));
    row.insert(row.end(), {format_double(cpu.values()[i], 0),
                           format_double(freq.values()[i], 2),
                           format_double(llc.values()[i], 0),
                           format_double(dma.values()[i], 1),
                           format_double(batch.values()[i], 0)});
    rows.push_back(std::move(row));
  }
  print_table(header, rows);

  std::printf(
      "\nconverged tail (last 10%% of %d episodes): %.2f Gbps, %.0f J, "
      "efficiency %.2f, reward %.3f  (%lld learner steps)\n",
      result.episodes, result.tail_gbps, result.tail_energy_j,
      result.tail_efficiency, result.tail_reward,
      static_cast<long long>(result.train_steps));
  dump_csv(curves, csv_name);
  return result;
}

}  // namespace greennfv::bench
