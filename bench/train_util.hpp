#pragma once

#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"
#include "core/greennfv.hpp"
#include "scenario/presets.hpp"

/// \file train_util.hpp
/// Shared harness for the training-progress figures (Figs 6-8): resolves
/// the evaluation scenario (paper-default unless overridden), trains the
/// DDPG policy under the figure's SLA while recording every per-episode
/// panel, and prints the panels as one downsampled table.

namespace greennfv::bench {

/// Resolves the scenario for a training figure. Training figures default
/// to 800 episodes (the paper trains its curves long past convergence);
/// every other knob comes from the scenario machinery.
inline scenario::ScenarioSpec training_scenario(const Config& config) {
  Config defaults = config;
  if (!defaults.has("episodes")) defaults.set("episodes", "800");
  return scenario::resolve(defaults);
}

/// Trains and prints the Fig 6/7/8-style panel table. Returns the result.
inline core::TrainResult run_training_figure(const std::string& figure,
                                             const std::string& title,
                                             core::SlaKind sla_kind,
                                             const Config& config,
                                             bool show_efficiency,
                                             const std::string& csv_name) {
  const scenario::ScenarioSpec spec = training_scenario(config);
  banner(figure, title, config, spec.name);
  Perf perf(csv_name);
  perf.add_windows(static_cast<double>(spec.episodes) *
                   spec.steps_per_episode);
  const core::TrainerConfig trainer_config =
      spec.trainer_config(spec.sla(sla_kind));

  telemetry::Recorder curves;
  core::GreenNfvTrainer trainer(trainer_config);
  const core::TrainResult result = trainer.train(&curves);

  const std::size_t points =
      static_cast<std::size_t>(config.get_int("table_rows", 20));
  const auto col = [&](const std::string& name) {
    return curves.series(name).downsample(points);
  };
  const TimeSeries t = col("throughput_gbps");
  const TimeSeries e = col("energy_j");
  const TimeSeries eff = col("efficiency");
  const TimeSeries cpu = col("cpu_usage_pct");
  const TimeSeries freq = col("core_freq_ghz");
  const TimeSeries llc = col("llc_alloc_pct");
  const TimeSeries dma = col("dma_mib");
  const TimeSeries batch = col("batch");

  std::vector<std::string> header = {"episode", "Gbps", "Energy(J)"};
  if (show_efficiency) header.push_back("Efficiency");
  header.insert(header.end(),
                {"CPU(%)", "Freq(GHz)", "LLC(%)", "DMA(MiB)", "Batch"});
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < t.size(); ++i) {
    std::vector<std::string> row = {format_double(t.times()[i], 0),
                                    format_double(t.values()[i], 2),
                                    format_double(e.values()[i], 0)};
    if (show_efficiency)
      row.push_back(format_double(eff.values()[i], 2));
    row.insert(row.end(), {format_double(cpu.values()[i], 0),
                           format_double(freq.values()[i], 2),
                           format_double(llc.values()[i], 0),
                           format_double(dma.values()[i], 1),
                           format_double(batch.values()[i], 0)});
    rows.push_back(std::move(row));
  }
  print_table(header, rows);

  std::printf(
      "\nconverged tail (last 10%% of %d episodes): %.2f Gbps, %.0f J, "
      "efficiency %.2f, reward %.3f  (%lld learner steps)\n",
      result.episodes, result.tail_gbps, result.tail_energy_j,
      result.tail_efficiency, result.tail_reward,
      static_cast<long long>(result.train_steps));
  dump_csv(curves, csv_name);
  return result;
}

}  // namespace greennfv::bench
