/// Reproduces Figure 11: "Total energy consumption (including the energy
/// cost of training RL algorithm) improvement compared to other models."
///
/// The RL model costs energy to train, but trains once and is then reused;
/// the saving is amortized. Following Eq. 9's intent we report
///
///     Es(t) = (E_baseline(t) - E_greennfv(t) - E_train) / E_baseline(t)
///
/// over deployment time t = 1..6 hours, with E_train measured as the
/// actual energy the simulator burned during the training episodes. (The
/// paper's Eq. 9 as printed normalizes by E_nf + E_t; we normalize by the
/// baseline so the value reads directly as "% saved vs baseline", matching
/// the figure's axis. EXPERIMENTS.md records this deviation.)
///
/// The steady-state power measurement executes through the campaign
/// runner (a one-cell matrix whose roster injects the metered pre-trained
/// policy), so artifacts land under out/fig11/ like every other sweep.
///
/// Expected shape (paper): ~20-25% saving after the first hour, growing
/// toward ~60% as the one-time training cost amortizes.
///
/// Overrides: any scenario key, plus fleet=N (hosting nodes the one-time
/// training cost amortizes over; the paper's testbed hosts chains on 3)
/// and jobs=N.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "campaign/runner.hpp"
#include "scenario/experiment.hpp"

using namespace greennfv;
using namespace greennfv::core;

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  if (bench::handle_cli(
          cli,
          bench::keys_plus(scenario::ScenarioSpec::known_keys(),
                           {"fleet", "jobs"}),
          scenario::ScenarioSpec::known_prefixes()))
    return 0;
  Config config = cli;
  if (!config.has("sla")) config.set("sla", "mine");
  if (!config.has("eval_windows")) config.set("eval_windows", "8");
  const scenario::ScenarioSpec spec = scenario::resolve(config);
  bench::banner("Figure 11", "energy saving incl. training cost", cli,
                spec.name);
  bench::Perf perf("fig11_energy_saving");

  // Train while accounting the energy every training episode burned.
  telemetry::Recorder curves;
  GreenNfvTrainer trainer(spec.trainer_config(spec.sla()));
  (void)trainer.train(&curves);
  const auto& train_energy = curves.series("energy_j");
  double e_train_j = 0.0;
  for (const double e : train_energy.values())
    e_train_j += e * spec.steps_per_episode;
  perf.add_windows(static_cast<double>(spec.episodes) *
                   spec.steps_per_episode);

  // Steady-state powers of the trained policy and the baseline, measured
  // by the campaign runner on the same traffic: a one-cell matrix whose
  // roster reuses the ONE policy metered above.
  campaign::CampaignSpec camp;
  camp.name = "fig11";
  camp.base = spec;
  const campaign::ArtifactStore store(out_root(), camp.name);
  campaign::CampaignRunner crunner(
      camp, bench::out_writable() ? &store : nullptr);
  crunner.set_roster_provider([&trainer](
                                  const scenario::ScenarioSpec& cell) {
    std::vector<scenario::SchedulerFactory> roster = scenario::filter_roster(
        scenario::default_roster(cell), "baseline");
    roster.push_back(
        {"GreenNFV(MinE)", 2,
         [&trainer](const core::EnvConfig& env, std::uint64_t) {
           // The amortization argument reuses the single trained policy;
           // it only fits the trained shape.
           if (env.num_chains != trainer.config().env.num_chains) {
             throw std::invalid_argument(
                 "fig11 amortizes a single trained policy; run it on"
                 " single-node scenarios (fleet=N scales the deployment)");
           }
           return trainer.make_scheduler("GreenNFV(MinE)");
         }});
    return roster;
  });
  const campaign::CampaignReport creport =
      crunner.run(static_cast<int>(config.get_int("jobs", 1)),
                  /*resume=*/false);
  const scenario::EvalReport& report = creport.runs.front().report;
  const EvalResult& base = report.models[0].result;
  const EvalResult& green = report.models[1].result;
  perf.add_windows(2.0 * spec.eval_windows);

  // The model "needs to be trained only once before deployment and is run
  // many times": training happens once, the policy then drives every
  // hosting node (the paper's testbed runs chains on three nodes).
  const int fleet = static_cast<int>(config.get_int("fleet", 3));
  std::printf("baseline power %.1f W/node, GreenNFV(MinE) power %.1f "
              "W/node, one-time training cost %.2f MJ, fleet of %d nodes\n\n",
              base.mean_power_w, green.mean_power_w, e_train_j / 1e6,
              fleet);

  std::vector<std::vector<std::string>> rows;
  telemetry::Recorder recorder;
  for (int hour = 1; hour <= 6; ++hour) {
    const double t_s = hour * 3600.0;
    const double e_baseline = fleet * base.mean_power_w * t_s;
    const double e_green = fleet * green.mean_power_w * t_s;
    const double saving =
        (e_baseline - e_green - e_train_j) / e_baseline * 100.0;
    rows.push_back({format("%d", hour), format_double(saving, 1) + "%"});
    recorder.record("saving_pct", hour, saving);
  }
  bench::print_table({"time(h)", "energy saving"}, rows);
  std::printf(
      "\nshape check: saving starts low (training cost dominates) and"
      " climbs toward\nthe steady-state power gap (paper: 23%% at first,"
      " 62%% over time).\n");
  bench::dump_csv(recorder, "fig11_energy_saving");
  return 0;
}
