/// Reproduces Figure 11: "Total energy consumption (including the energy
/// cost of training RL algorithm) improvement compared to other models."
///
/// The RL model costs energy to train, but trains once and is then reused;
/// the saving is amortized. Following Eq. 9's intent we report
///
///     Es(t) = (E_baseline(t) - E_greennfv(t) - E_train) / E_baseline(t)
///
/// over deployment time t = 1..6 hours, with E_train measured as the
/// actual energy the simulator burned during the training episodes. (The
/// paper's Eq. 9 as printed normalizes by E_nf + E_t; we normalize by the
/// baseline so the value reads directly as "% saved vs baseline", matching
/// the figure's axis. EXPERIMENTS.md records this deviation.)
///
/// Expected shape (paper): ~20-25% saving after the first hour, growing
/// toward ~60% as the one-time training cost amortizes.

#include <cstdio>

#include "bench/train_util.hpp"
#include "core/nf_controller.hpp"

using namespace greennfv;
using namespace greennfv::core;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  bench::banner("Figure 11", "energy saving incl. training cost", config);
  const int episodes = static_cast<int>(config.get_int("episodes", 400));
  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));

  const double reference_j = hwmodel::NodeSpec{}.p_max_w * 10.0;
  TrainerConfig trainer_config = bench::standard_trainer(
      config, Sla::min_energy(7.5, reference_j), episodes);

  // Train while accounting the energy every training episode burned.
  telemetry::Recorder curves;
  GreenNfvTrainer trainer(trainer_config);
  (void)trainer.train(&curves);
  const auto& train_energy = curves.series("energy_j");
  double e_train_j = 0.0;
  for (const double e : train_energy.values())
    e_train_j += e * trainer_config.env.steps_per_episode;
  auto scheduler = trainer.make_scheduler("GreenNFV(MinE)");

  // Steady-state powers of the trained policy and the baseline.
  BaselineScheduler baseline{trainer_config.env.spec};
  const EvalResult base =
      evaluate_scheduler(trainer_config.env, baseline, 8, seed + 5);
  const EvalResult green =
      evaluate_scheduler(trainer_config.env, *scheduler, 8, seed + 5);

  // The model "needs to be trained only once before deployment and is run
  // many times": training happens once, the policy then drives every
  // hosting node (the paper's testbed runs chains on three nodes).
  const int nodes = static_cast<int>(config.get_int("nodes", 3));
  std::printf("baseline power %.1f W/node, GreenNFV(MinE) power %.1f "
              "W/node, one-time training cost %.2f MJ, fleet of %d nodes\n\n",
              base.mean_power_w, green.mean_power_w, e_train_j / 1e6,
              nodes);

  std::vector<std::vector<std::string>> rows;
  telemetry::Recorder recorder;
  for (int hour = 1; hour <= 6; ++hour) {
    const double t_s = hour * 3600.0;
    const double e_baseline = nodes * base.mean_power_w * t_s;
    const double e_green = nodes * green.mean_power_w * t_s;
    const double saving =
        (e_baseline - e_green - e_train_j) / e_baseline * 100.0;
    rows.push_back({format("%d", hour), format_double(saving, 1) + "%"});
    recorder.record("saving_pct", hour, saving);
  }
  bench::print_table({"time(h)", "energy saving"}, rows);
  std::printf(
      "\nshape check: saving starts low (training cost dominates) and"
      " climbs toward\nthe steady-state power gap (paper: 23%% at first,"
      " 62%% over time).\n");
  bench::dump_csv(recorder, "fig11_energy_saving");
  return 0;
}
