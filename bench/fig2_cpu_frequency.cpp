/// Reproduces Figure 2: "Micro-benchmarking of CPU frequencies: effect of
/// CPU frequencies on NF throughput and energy efficiency."
///
/// One 3-NF chain (firewall -> router -> IDS) is fed line-rate traffic of
/// 1518-byte frames ("The line rate traffic with a large packet size (1518
/// Bytes) is fed into the function chain"). The DVFS ladder is swept from
/// 1.2 to 2.1 GHz; throughput and the energy of a fixed 10-second window
/// are reported.
///
/// Expected shape (paper): both throughput and energy grow with frequency,
/// non-linearly — throughput saturates toward line rate (memory latency is
/// constant in time, so each additional GHz buys fewer packets), energy
/// climbs superlinearly with the f*V^2 term.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "hwmodel/dvfs.hpp"
#include "hwmodel/node.hpp"
#include "traffic/generator.hpp"

using namespace greennfv;
using namespace greennfv::hwmodel;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  if (bench::handle_cli(config, {"window_s", "cores"})) return 0;
  bench::banner("Figure 2", "CPU frequency sweep on a 3-NF chain", config);
  bench::Perf perf("fig2_cpu_frequency");
  const double window_s = config.get_double("window_s", 10.0);
  const double cores = config.get_double("cores", 2.0);

  const NodeSpec spec;
  const NodeModel node(spec);
  const DvfsController dvfs(spec);
  const traffic::FlowSpec flow = traffic::line_rate_flow(1518);

  std::vector<std::vector<std::string>> rows;
  telemetry::Recorder recorder;
  for (int p = 0; p < dvfs.num_pstates(); ++p) {
    const double freq = dvfs.frequency_ghz(p);
    ChainDeployment dep;
    dep.nfs = {nf_catalog::firewall(), nf_catalog::router(),
               nf_catalog::ids()};
    dep.workload.offered_pps = flow.mean_rate_pps;
    dep.workload.pkt_bytes = 1518;
    dep.cores = cores;
    dep.freq_ghz = freq;
    dep.llc_fraction = 1.0;
    dep.dma_bytes = 16ull << 20;  // ample ring so DVFS is the only limiter
    dep.batch = 64;
    dep.poll_mode = true;  // DPDK poll-mode micro-benchmark
    const auto eval = node.evaluate({dep}, true);
    const double energy = eval.energy_j(window_s);
    rows.push_back({format_double(freq, 1),
                    format_double(eval.total_goodput_gbps, 2),
                    format_double(energy, 0),
                    format_double(eval.power_w, 1)});
    recorder.record("throughput_gbps", freq, eval.total_goodput_gbps);
    recorder.record("energy_j", freq, energy);
    perf.add_windows(1);
  }

  bench::print_table({"GHz", "Gbps", "Energy(J)", "Power(W)"}, rows);
  std::printf(
      "\nshape check: throughput and energy both rise with frequency;\n"
      "throughput saturates toward 10 Gbps while energy keeps climbing.\n");
  bench::dump_csv(recorder, "fig2_cpu_frequency");
  return 0;
}
