/// Reproduces Figure 10: "Performance (in terms of throughput and energy
/// consumption) of the model with different SLA's over time."
///
///   (a) Maximum-Throughput SLA with a fixed energy constraint of 3.3 KJ;
///   (b) Minimum-Energy SLA with a throughput constraint of 7.5 Gbps.
///
/// Each trained policy runs the live NF-controller loop (through the
/// Scenario/Experiment API) for ~120 seconds of virtual time; per-window
/// throughput and energy are reported.
///
/// Expected shape (paper): early windows oscillate / overshoot while the
/// controller reacts to live traffic from its cold start, then both series
/// settle — (a) near the best throughput the energy cap allows, (b) just
/// above the 7.5 Gbps floor with energy walked down.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "scenario/experiment.hpp"

using namespace greennfv;

namespace {

/// Fig 10 defaults on top of the chosen scenario: 5 s control intervals
/// over 120 s, a 300-episode training budget, the paper's 3.3 KJ cap.
Config with_fig10_defaults(Config config) {
  const auto defaulted = [&config](const char* key, const char* value) {
    if (!config.has(key)) config.set(key, value);
  };
  defaulted("window_s", "5");
  defaulted("eval_windows", "24");
  defaulted("episodes", "300");
  defaulted("energy_budget", "3300");
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  if (bench::handle_cli(cli, scenario::ScenarioSpec::known_keys(),
                        scenario::ScenarioSpec::known_prefixes()))
    return 0;
  const Config config = with_fig10_defaults(cli);

  // One scenario per panel: identical topology/traffic, different SLA.
  Config maxt_config = config;
  maxt_config.set("sla", "maxt");
  const scenario::ScenarioSpec maxt_spec = scenario::resolve(maxt_config);
  Config mine_config = config;
  mine_config.set("sla", "mine");
  const scenario::ScenarioSpec mine_spec = scenario::resolve(mine_config);

  bench::banner("Figure 10", "fixed-SLA behaviour over time", cli,
                maxt_spec.name);
  bench::Perf perf("fig10_sla_timeseries");
  perf.add_windows(2.0 * maxt_spec.eval_windows);
  telemetry::Recorder recorder;

  std::printf("[train+run] (a) MaxTh, energy constraint %.1f KJ...\n",
              maxt_spec.energy_budget_j / 1000.0);
  scenario::ExperimentRunner maxt_runner(maxt_spec);
  scenario::SchedulerFactory maxt_entry =
      scenario::filter_roster(scenario::default_roster(maxt_spec),
                              "greennfv-maxt")
          .front();
  // The figure plots the controller reacting from its cold start — the
  // early overshoot IS the data, so nothing is warmed up away.
  maxt_entry.warmup = 0;
  (void)maxt_runner.run_model(maxt_entry, &recorder);

  std::printf("[train+run] (b) MinE, throughput constraint %.1f Gbps...\n",
              mine_spec.throughput_floor_gbps);
  scenario::ExperimentRunner mine_runner(mine_spec);
  scenario::SchedulerFactory mine_entry =
      scenario::filter_roster(scenario::default_roster(mine_spec),
                              "greennfv-mine")
          .front();
  mine_entry.warmup = 0;
  (void)mine_runner.run_model(mine_entry, &recorder);

  const std::string prefix_a = scenario::series_prefix("GreenNFV(MaxT)");
  const std::string prefix_b = scenario::series_prefix("GreenNFV(MinE)");
  const auto& t_a = recorder.series(prefix_a + "throughput_gbps");
  const auto& e_a = recorder.series(prefix_a + "energy_j");
  const auto& t_b = recorder.series(prefix_b + "throughput_gbps");
  const auto& e_b = recorder.series(prefix_b + "energy_j");
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < t_a.size(); ++i) {
    rows.push_back({format_double(t_a.times()[i] + maxt_spec.window_s, 0),
                    format_double(t_a.values()[i], 2),
                    format_double(e_a.values()[i] / 1000.0, 2),
                    format_double(t_b.values()[i], 2),
                    format_double(e_b.values()[i] / 1000.0, 2)});
  }
  bench::print_table(
      {"t(s)", "(a) Gbps", "(a) E(KJ)", "(b) Gbps", "(b) E(KJ)"}, rows);
  std::printf(
      "\nshape check: (a) settles at the cap-permitted throughput with"
      " energy <= %.1f KJ;\n(b) holds >= %.1f Gbps while energy settles"
      " low.\n",
      maxt_spec.energy_budget_j / 1000.0, mine_spec.throughput_floor_gbps);
  bench::dump_csv(recorder, "fig10_sla_timeseries");
  return 0;
}
