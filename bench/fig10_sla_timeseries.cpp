/// Reproduces Figure 10: "Performance (in terms of throughput and energy
/// consumption) of the model with different SLA's over time."
///
///   (a) Maximum-Throughput SLA with a fixed energy constraint of 3.3 KJ;
///   (b) Minimum-Energy SLA with a throughput constraint of 7.5 Gbps.
///
/// A trained policy runs the live NF-controller loop for ~120 seconds of
/// virtual time; per-window throughput and energy are reported.
///
/// Expected shape (paper): early windows oscillate / overshoot while the
/// controller reacts to live traffic from its cold start, then both series
/// settle — (a) near the best throughput the energy cap allows, (b) just
/// above the 7.5 Gbps floor with energy walked down.

#include <cstdio>

#include "bench/train_util.hpp"
#include "core/nf_controller.hpp"

using namespace greennfv;
using namespace greennfv::core;

namespace {

void run_series(const std::string& label, Sla sla, const Config& config,
                telemetry::Recorder& recorder, const std::string& prefix) {
  const int episodes = static_cast<int>(config.get_int("episodes", 300));
  TrainerConfig trainer_config =
      greennfv::bench::standard_trainer(config, sla, episodes);
  trainer_config.env.window_s = 5.0;  // 5 s control intervals over 120 s
  trainer_config.env.sub_windows = 5;
  auto scheduler = train_best_scheduler(
      trainer_config, label,
      static_cast<int>(config.get_int("candidates", 2)));

  NfvEnvironment env(trainer_config.env,
                     static_cast<std::uint64_t>(config.get_int("seed", 42)) +
                         991);
  NfController controller(env, *scheduler);
  const int windows = static_cast<int>(config.get_int("windows", 24));
  (void)controller.run(windows, &recorder, prefix);
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  greennfv::bench::banner("Figure 10",
                          "fixed-SLA behaviour over time", config);
  const double budget = config.get_double("energy_budget", 3300.0);
  const double floor = config.get_double("throughput_floor", 7.5);
  const double reference_j = hwmodel::NodeSpec{}.p_max_w * 5.0;

  telemetry::Recorder recorder;
  std::printf("[train+run] (a) MaxTh, energy constraint %.1f KJ...\n",
              budget / 1000.0);
  run_series("GreenNFV(MaxT)", Sla::max_throughput(budget), config,
             recorder, "maxth_");
  std::printf("[train+run] (b) MinE, throughput constraint %.1f Gbps...\n",
              floor);
  run_series("GreenNFV(MinE)", Sla::min_energy(floor, reference_j), config,
             recorder, "mine_");

  const auto& t_a = recorder.series("maxth_throughput_gbps");
  const auto& e_a = recorder.series("maxth_energy_j");
  const auto& t_b = recorder.series("mine_throughput_gbps");
  const auto& e_b = recorder.series("mine_energy_j");
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < t_a.size(); ++i) {
    rows.push_back({format_double(t_a.times()[i] + 5.0, 0),
                    format_double(t_a.values()[i], 2),
                    format_double(e_a.values()[i] / 1000.0, 2),
                    format_double(t_b.values()[i], 2),
                    format_double(e_b.values()[i] / 1000.0, 2)});
  }
  greennfv::bench::print_table(
      {"t(s)", "(a) Gbps", "(a) E(KJ)", "(b) Gbps", "(b) E(KJ)"}, rows);
  std::printf(
      "\nshape check: (a) settles at the cap-permitted throughput with"
      " energy <= %.1f KJ;\n(b) holds >= %.1f Gbps while energy settles"
      " low.\n",
      budget / 1000.0, floor);
  greennfv::bench::dump_csv(recorder, "fig10_sla_timeseries");
  return 0;
}
