/// google-benchmark micro-benchmarks of the hot data-path primitives: the
/// lock-free rings, the mempool, the NF work functions, the analytic node
/// model, and the MLP inference the NF controller runs per decision. These
/// are the pieces whose real-machine cost budget the platform depends on —
/// regressions here would invalidate the threaded engine's plumbing.

#include <benchmark/benchmark.h>

#include "hwmodel/node.hpp"
#include "nfvsim/chain.hpp"
#include "nfvsim/mempool.hpp"
#include "nfvsim/ring.hpp"
#include "rl/ddpg.hpp"

namespace {

using namespace greennfv;
using namespace greennfv::nfvsim;

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<Packet*> ring(1024);
  Packet pkt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(&pkt));
    Packet* out = nullptr;
    benchmark::DoNotOptimize(ring.try_pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SpscRingBulk(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  SpscRing<Packet*> ring(4096);
  Packet pkt;
  std::vector<Packet*> in(batch, &pkt);
  std::vector<Packet*> out(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ring.try_push_bulk(std::span<Packet* const>(in.data(), batch)));
    benchmark::DoNotOptimize(
        ring.try_pop_bulk(std::span<Packet*>(out.data(), batch)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SpscRingBulk)->Arg(2)->Arg(32)->Arg(256);

void BM_MpmcQueue(benchmark::State& state) {
  MpmcQueue<Packet*> queue(1024);
  Packet pkt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.try_push(&pkt));
    Packet* out = nullptr;
    benchmark::DoNotOptimize(queue.try_pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcQueue);

void BM_MempoolAllocFree(benchmark::State& state) {
  Mempool pool(4096);
  for (auto _ : state) {
    Packet* pkt = pool.alloc();
    benchmark::DoNotOptimize(pkt);
    pool.free(pkt);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MempoolAllocFree);

void BM_ChainInline(benchmark::State& state) {
  ServiceChain chain("bench", standard_chain_nfs(
                                  static_cast<int>(state.range(0))));
  Packet pkt;
  pkt.frame_bytes = 512;
  pkt.src_ip = 0xC0A80001;
  pkt.dst_ip = 0x0A010101;
  pkt.dst_port = 443;
  std::uint64_t id = 0;
  for (auto _ : state) {
    pkt.flags = 0;
    pkt.ttl = 64;
    pkt.id = ++id;
    benchmark::DoNotOptimize(chain.process_inline(pkt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainInline)->Arg(0)->Arg(1)->Arg(2);

void BM_NodeModelEvaluate(benchmark::State& state) {
  const hwmodel::NodeModel node;
  std::vector<hwmodel::ChainDeployment> chains(3);
  for (int c = 0; c < 3; ++c) {
    chains[static_cast<std::size_t>(c)].nfs = {
        hwmodel::nf_catalog::firewall(), hwmodel::nf_catalog::router(),
        hwmodel::nf_catalog::ids()};
    chains[static_cast<std::size_t>(c)].workload.offered_pps = 1e6;
    chains[static_cast<std::size_t>(c)].workload.pkt_bytes = 512;
    chains[static_cast<std::size_t>(c)].llc_fraction = 0.33;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.evaluate(chains, true));
  }
}
BENCHMARK(BM_NodeModelEvaluate);

void BM_DdpgActorInference(benchmark::State& state) {
  rl::DdpgConfig config;
  config.state_dim = 12;
  config.action_dim = 15;
  const rl::DdpgAgent agent(config, 7);
  const std::vector<double> obs(12, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.act(obs));
  }
}
BENCHMARK(BM_DdpgActorInference);

void BM_DdpgTrainStep(benchmark::State& state) {
  rl::DdpgConfig config;
  config.state_dim = 12;
  config.action_dim = 15;
  config.batch_size = 64;
  rl::DdpgAgent agent(config, 7);
  rl::UniformReplay replay(1024);
  Rng rng(9);
  for (int i = 0; i < 256; ++i) {
    rl::Transition t;
    t.state.assign(12, rng.uniform());
    t.action.assign(15, rng.uniform(-1, 1));
    t.reward = rng.uniform();
    t.next_state.assign(12, rng.uniform());
    replay.add(std::move(t), 0.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.train_step(replay, rng));
  }
}
BENCHMARK(BM_DdpgTrainStep);

}  // namespace

BENCHMARK_MAIN();
