/// Reproduces Figure 3: "Micro-benchmarking of batching size: effect of
/// batch size on NF throughput and energy efficiency."
///
/// A chain under a tight LLC slice is swept across batch sizes. Small
/// batches pay the per-wakeup (IPC + call) cost on every few packets;
/// large batches amortize it but blow the slice out of cache. Both the
/// throughput/energy pair (Fig. 3a) and the LLC miss count (Fig. 3b) are
/// reported. Energy is for a fixed amount of work (10M packets), matching
/// the paper's falling-then-rising KJ axis.
///
/// Expected shape (paper): throughput rises to an interior optimum
/// (~150-200 packets) then falls; misses fall then climb; energy mirrors
/// throughput inversely.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "hwmodel/node.hpp"
#include "traffic/generator.hpp"

using namespace greennfv;
using namespace greennfv::hwmodel;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  if (bench::handle_cli(config, {"cores", "work_mpkts"})) return 0;
  bench::banner("Figure 3", "packet batch size sweep", config);
  bench::Perf perf("fig3_batch_size");
  const double cores = config.get_double("cores", 0.4);
  const double work_mpkts = config.get_double("work_mpkts", 10.0);

  const NodeModel node;
  const traffic::FlowSpec flow = traffic::line_rate_flow(1518);

  std::vector<std::vector<std::string>> rows;
  telemetry::Recorder recorder;
  for (std::uint32_t batch = 10; batch <= 300; batch += 10) {
    // Chain under test: light NFs, tight 10% LLC slice.
    ChainDeployment dep;
    dep.nfs = {nf_catalog::firewall(), nf_catalog::nat(),
               nf_catalog::flow_monitor()};
    dep.workload.offered_pps = flow.mean_rate_pps;
    dep.workload.pkt_bytes = 1518;
    dep.cores = cores;
    dep.freq_ghz = 2.1;
    dep.llc_fraction = 0.10;
    dep.dma_bytes = 8ull << 20;  // ring is not the limiter in this sweep
    dep.batch = batch;
    dep.poll_mode = true;
    // A cache-hungry neighbour owns the rest of the LLC, as on a real
    // consolidated node.
    ChainDeployment neighbour;
    neighbour.nfs = {nf_catalog::ids(), nf_catalog::epc(),
                     nf_catalog::router()};
    neighbour.workload.offered_pps = 0.5e6;
    neighbour.workload.pkt_bytes = 512;
    neighbour.cores = 2.0;
    neighbour.llc_fraction = 0.90;
    neighbour.batch = 64;
    neighbour.poll_mode = true;

    const auto eval = node.evaluate({dep, neighbour}, true);
    const auto& chain = eval.chains[0];
    const double gbps = chain.eval.throughput_gbps;
    // Fixed-work energy: watts attributed to the chain over the time to
    // push `work_mpkts` million packets through it.
    const double seconds =
        chain.eval.goodput_pps > 0.0
            ? work_mpkts * 1e6 / chain.eval.goodput_pps
            : 0.0;
    const double energy_kj = chain.power_w * seconds / 1000.0;
    // Fig. 3b's "Cache Miss (x10^4)": misses across the same fixed work.
    const double misses_x1e4 =
        chain.eval.misses_per_pkt * work_mpkts * 1e6 / 1e4;

    rows.push_back({format("%u", batch), format_double(gbps, 2),
                    format_double(energy_kj, 2),
                    format_double(misses_x1e4, 0)});
    recorder.record("throughput_gbps", batch, gbps);
    recorder.record("energy_kj", batch, energy_kj);
    recorder.record("miss_x1e4", batch, misses_x1e4);
    perf.add_windows(1);
  }

  bench::print_table({"batch", "Gbps", "Energy(KJ)", "Miss(x1e4)"}, rows);
  std::printf(
      "\nshape check: throughput peaks at an interior batch size and falls\n"
      "beyond it; misses and fixed-work energy dip then climb.\n");
  bench::dump_csv(recorder, "fig3_batch_size");
  return 0;
}
