/// Reproduces Figure 9: "Performance comparison of different models based
/// on throughput and energy consumption."
///
/// Seven bars: Baseline, Heuristics (Algorithm 1), EE-Pstate, Q-Learning,
/// and GreenNFV trained under the MinE, MaxT, and EE SLAs. All models are
/// evaluated by the same NfController harness on the same traffic.
///
/// Expected shape (paper): baseline lowest (~2 Gbps at the highest energy);
/// Heuristics / EE-Pstate / Q-Learning roughly 2x baseline; GreenNFV
/// variants on top — MaxT ~4.4x baseline throughput at ~33% less energy,
/// MinE ~3x baseline at ~50-60% less energy, EE ~4x at mid energy.
///
/// Overrides: episodes=N (per SLA), q_episodes=N, eval_windows=N, seed=K.

#include <cstdio>
#include <memory>

#include "bench/train_util.hpp"
#include "core/ee_pstate.hpp"
#include "core/heuristic.hpp"
#include "core/nf_controller.hpp"

using namespace greennfv;
using namespace greennfv::core;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  bench::banner("Figure 9", "model comparison (throughput & energy)",
                config);
  const int episodes = static_cast<int>(config.get_int("episodes", 400));
  const int q_episodes = static_cast<int>(config.get_int("q_episodes", 250));
  const int eval_windows =
      static_cast<int>(config.get_int("eval_windows", 12));
  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));

  const EnvConfig env_ee =
      bench::standard_env(config, Sla::energy_efficiency());
  const double budget = config.get_double("energy_budget", 2000.0);
  const double floor = config.get_double("throughput_floor", 7.5);
  const double reference_j = env_ee.spec.p_max_w * env_ee.window_s;

  // --- train the learned models (2-seed model selection each) --------------
  const int candidates = static_cast<int>(config.get_int("candidates", 2));
  std::printf("[train] GreenNFV(MinE), %d episodes x %d seeds...\n",
              episodes, candidates);
  TrainerConfig mine_cfg = bench::standard_trainer(
      config, Sla::min_energy(floor, reference_j), episodes);
  auto green_mine =
      train_best_scheduler(mine_cfg, "GreenNFV(MinE)", candidates);

  std::printf("[train] GreenNFV(MaxT), %d episodes x %d seeds...\n",
              episodes, candidates);
  TrainerConfig maxt_cfg =
      bench::standard_trainer(config, Sla::max_throughput(budget), episodes);
  maxt_cfg.seed = seed + 1;
  auto green_maxt =
      train_best_scheduler(maxt_cfg, "GreenNFV(MaxT)", candidates);

  std::printf("[train] GreenNFV(EE), %d episodes x %d seeds...\n", episodes,
              candidates);
  TrainerConfig ee_cfg =
      bench::standard_trainer(config, Sla::energy_efficiency(), episodes);
  ee_cfg.seed = seed + 2;
  auto green_ee =
      train_best_scheduler(ee_cfg, "GreenNFV(EE)", candidates);

  std::printf("[train] Q-Learning, %d episodes...\n", q_episodes);
  auto qlearning = train_qlearning_scheduler(env_ee, q_episodes, seed + 3);

  // --- evaluate everything on identical traffic -----------------------------
  BaselineScheduler baseline{env_ee.spec};
  HeuristicScheduler heuristic{env_ee.spec, HeuristicConfig{}};
  EePstateScheduler ee_pstate{env_ee.spec, EePstateConfig{}};

  struct Entry {
    Scheduler* scheduler;
    int warmup;
  };
  const Entry entries[] = {
      {&baseline, 2},
      {&heuristic, 40},  // Algorithm 1 converges slowly (§5.1)
      {&ee_pstate, 6},
      {qlearning.get(), 2},
      {green_mine.get(), 2},
      {green_maxt.get(), 2},
      {green_ee.get(), 2},
  };

  std::vector<EvalResult> results;
  for (const Entry& entry : entries) {
    results.push_back(evaluate_scheduler(env_ee, *entry.scheduler,
                                         eval_windows, seed + 77,
                                         entry.warmup));
  }

  const double base_gbps = results[0].mean_gbps;
  const double base_energy = results[0].mean_energy_j;
  std::vector<std::vector<std::string>> rows;
  telemetry::Recorder recorder;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const EvalResult& r = results[i];
    rows.push_back({r.scheduler, format_double(r.mean_gbps, 2),
                    format_double(r.mean_energy_j, 0),
                    format_double(r.mean_gbps / base_gbps, 2) + "x",
                    format_double(r.mean_energy_j / base_energy * 100.0, 0) +
                        "%",
                    format_double(r.mean_efficiency, 2)});
    recorder.record("throughput_gbps", static_cast<double>(i), r.mean_gbps);
    recorder.record("energy_j", static_cast<double>(i), r.mean_energy_j);
  }
  bench::print_table({"model", "Gbps", "Energy(J)", "T vs base",
                      "E vs base", "Efficiency"},
                     rows);
  std::printf(
      "\nshape check (paper): Heuristics/EE-Pstate/Q-Learning ~2x baseline"
      " throughput;\nGreenNFV(MaxT) ~4.4x at ~33%% less energy;"
      " GreenNFV(MinE) ~3x at ~50-60%% less energy;\nGreenNFV(EE) ~4x.\n");
  bench::dump_csv(recorder, "fig9_model_comparison");
  return 0;
}
