/// Reproduces Figure 9: "Performance comparison of different models based
/// on throughput and energy consumption."
///
/// Seven bars: Baseline, Heuristics (Algorithm 1), EE-Pstate, Q-Learning,
/// and GreenNFV trained under the MinE, MaxT, and EE SLAs. All models run
/// through the same ExperimentRunner on the same scenario (paper-default
/// unless `scenario=`/`scenario_file=` says otherwise).
///
/// Expected shape (paper): baseline lowest (~2 Gbps at the highest energy);
/// Heuristics / EE-Pstate / Q-Learning roughly 2x baseline; GreenNFV
/// variants on top — MaxT ~4.4x baseline throughput at ~33% less energy,
/// MinE ~3x baseline at ~50-60% less energy, EE ~4x at mid energy.
///
/// Overrides: any scenario key (episodes=N, q_episodes=N, eval_windows=N,
/// seed=K, scenario=NAME...) plus models=a,b,c to run a subset.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "scenario/experiment.hpp"

using namespace greennfv;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  if (bench::handle_cli(
          config,
          bench::keys_plus(scenario::ScenarioSpec::known_keys(),
                           {"models"}),
          scenario::ScenarioSpec::known_prefixes()))
    return 0;

  const scenario::ScenarioSpec spec = scenario::resolve(config);
  bench::banner("Figure 9", "model comparison (throughput & energy)",
                config, spec.name);

  std::vector<scenario::SchedulerFactory> roster =
      scenario::default_roster(spec);
  if (const auto models = config.get("models"))
    roster = scenario::filter_roster(roster, *models);

  scenario::ExperimentRunner runner(spec);
  const scenario::EvalReport report = runner.run(roster);

  std::fputs(report.table().c_str(), stdout);
  std::printf(
      "\nshape check (paper): Heuristics/EE-Pstate/Q-Learning ~2x baseline"
      " throughput;\nGreenNFV(MaxT) ~4.4x at ~33%% less energy;"
      " GreenNFV(MinE) ~3x at ~50-60%% less energy;\nGreenNFV(EE) ~4x.\n");
  bench::dump_csv(report.series, "fig9_model_comparison");
  return 0;
}
