/// Reproduces Figure 9: "Performance comparison of different models based
/// on throughput and energy consumption."
///
/// Seven bars: Baseline, Heuristics (Algorithm 1), EE-Pstate, Q-Learning,
/// and GreenNFV trained under the MinE, MaxT, and EE SLAs. The comparison
/// executes through the campaign runner as a one-cell sweep — jobs=N
/// parallelizes across seeds, artifacts land under out/fig9/, and an
/// interrupted run resumes (resume=1) — while the default single-seed run
/// reproduces the pre-campaign wiring bit for bit (the per-run seed is
/// the scenario seed, and the evaluation path is the same
/// ExperimentRunner).
///
/// Expected shape (paper): baseline lowest (~2 Gbps at the highest energy);
/// Heuristics / EE-Pstate / Q-Learning roughly 2x baseline; GreenNFV
/// variants on top — MaxT ~4.4x baseline throughput at ~33% less energy,
/// MinE ~3x baseline at ~50-60% less energy, EE ~4x at mid energy.
///
/// Overrides: any scenario key (episodes=N, q_episodes=N, eval_windows=N,
/// seed=K, scenario=NAME...) plus models=a,b,c for a roster subset,
/// seeds=a,b,c / auto_seeds=N for a seed axis, jobs=N, resume=1.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "campaign/runner.hpp"
#include "scenario/experiment.hpp"

using namespace greennfv;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  if (bench::handle_cli(
          config,
          bench::keys_plus(scenario::ScenarioSpec::known_keys(),
                           {"models", "seeds", "auto_seeds", "jobs",
                            "resume"}),
          scenario::ScenarioSpec::known_prefixes()))
    return 0;

  const scenario::ScenarioSpec spec = scenario::resolve(config);
  bench::banner("Figure 9", "model comparison (throughput & energy)",
                config, spec.name);
  bench::Perf perf("fig9_model_comparison");

  campaign::CampaignSpec camp;
  camp.name = "fig9";
  camp.base = spec;  // the resolved scenario IS the single cell
  camp.models = config.get_string("models", "");
  if (const auto seeds = config.get("seeds")) {
    // Config::from_string would split the comma list; hand the raw value
    // to the campaign parser instead.
    Config seed_config;
    seed_config.set("seeds", *seeds);
    camp.apply(seed_config);
  }
  camp.auto_seeds = static_cast<int>(config.get_int("auto_seeds", 1));

  const campaign::ArtifactStore store(out_root(), camp.name);
  campaign::CampaignRunner runner(
      camp, bench::out_writable() ? &store : nullptr);
  const campaign::CampaignReport report =
      runner.run(static_cast<int>(config.get_int("jobs", 1)),
                 config.get_bool("resume", false));

  // The familiar Fig. 9 table comes from the base-seed run; multi-seed
  // campaigns additionally get the mean +- CI summary.
  const scenario::EvalReport& eval = report.runs.front().report;
  std::fputs(eval.table().c_str(), stdout);
  if (report.runs.size() > 1) {
    std::printf("\nacross %zu seeds:\n", report.runs.size());
    std::fputs(report.summary.table().c_str(), stdout);
  }
  for (const auto& run : report.runs) {
    // Resumed runs cost no wall-clock; counting them would poison the
    // windows/sec trajectory.
    if (!run.from_cache)
      perf.add_windows(static_cast<double>(run.report.models.size()) *
                       spec.eval_windows);
  }

  std::printf(
      "\nshape check (paper): Heuristics/EE-Pstate/Q-Learning ~2x baseline"
      " throughput;\nGreenNFV(MaxT) ~4.4x at ~33%% less energy;"
      " GreenNFV(MinE) ~3x at ~50-60%% less energy;\nGreenNFV(EE) ~4x.\n");
  bench::dump_csv(eval.series, "fig9_model_comparison");
  return 0;
}
