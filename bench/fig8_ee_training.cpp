/// Reproduces Figure 8: "Training progress of the proposed reinforcement
/// learning algorithm during the testing of the Energy-Efficiency SLA."
///
/// Unconstrained maximization of λ = T/E (Eq. 3). Panels (a)-(h): as
/// Figs 6-7 plus the efficiency trace itself.
///
/// Expected shape (paper): efficiency climbs in stages as the policy first
/// raises throughput, then sheds energy (dropping CPU allocation while
/// batch and DMA compensate), stabilizing around several Gbps per KJ.

#include "bench/train_util.hpp"

using namespace greennfv;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  if (bench::handle_cli(
          config,
          bench::keys_plus(scenario::ScenarioSpec::known_keys(),
                           {"table_rows", "replay"}),
          scenario::ScenarioSpec::known_prefixes()))
    return 0;
  (void)bench::run_training_figure(
      "Figure 8", "Energy-Efficiency SLA training progress",
      core::SlaKind::kEnergyEfficiency, config,
      /*show_efficiency=*/true, "fig8_ee_training");
  return 0;
}
