/// Reproduces Figure 4: "Micro-benchmarking of DMA buffer size: effect of
/// DMA buffer size on NF throughput and energy efficiency."
///
/// One chain is fed line-rate traffic of 64-byte and 1518-byte frames while
/// the NIC DMA buffer sweeps 1..40 MB. Small buffers stall the NIC between
/// polls; larger buffers approach line rate with diminishing returns (and
/// silently spill DDIO, which keeps the gain sub-linear).
///
/// Expected shape (paper): throughput rises steadily toward a plateau for
/// both frame sizes; energy per million packets falls as the fixed power
/// amortizes over more delivered packets; the 64-byte flow saturates the
/// CPU far below line rate and pays more J/Mpkt.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "hwmodel/node.hpp"
#include "traffic/generator.hpp"

using namespace greennfv;
using namespace greennfv::hwmodel;

namespace {

struct Point {
  double gbps = 0.0;
  double j_per_mpkt = 0.0;
};

Point measure(const NodeModel& node, std::uint32_t pkt_bytes,
              double dma_mib, double cores) {
  ChainDeployment dep;
  dep.nfs = {nf_catalog::firewall(), nf_catalog::router(),
             nf_catalog::ids()};
  const traffic::FlowSpec flow = traffic::line_rate_flow(pkt_bytes);
  dep.workload.offered_pps = flow.mean_rate_pps;
  dep.workload.pkt_bytes = pkt_bytes;
  dep.cores = cores;
  dep.freq_ghz = 2.1;
  dep.llc_fraction = 1.0;
  dep.dma_bytes = units::mib_to_bytes(dma_mib);
  dep.batch = 64;
  dep.poll_mode = true;
  const auto eval = node.evaluate({dep}, true);
  Point p;
  p.gbps = eval.chains[0].eval.throughput_gbps;
  p.j_per_mpkt = eval.chains[0].energy_per_mpkt_j;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  if (bench::handle_cli(config, {"cores"})) return 0;
  bench::banner("Figure 4", "DMA buffer size sweep (64B vs 1518B)", config);
  bench::Perf perf("fig4_dma_buffer");
  const double cores = config.get_double("cores", 2.0);

  const NodeModel node;
  std::vector<std::vector<std::string>> rows;
  telemetry::Recorder recorder;
  for (double dma = 1.0; dma <= 40.0; dma += (dma < 8 ? 1.0 : 4.0)) {
    const Point small = measure(node, 64, dma, cores);
    const Point large = measure(node, 1518, dma, cores);
    rows.push_back({format_double(dma, 0), format_double(small.gbps, 2),
                    format_double(large.gbps, 2),
                    format_double(small.j_per_mpkt, 1),
                    format_double(large.j_per_mpkt, 1)});
    recorder.record("gbps_64B", dma, small.gbps);
    recorder.record("gbps_1518B", dma, large.gbps);
    recorder.record("j_per_mpkt_64B", dma, small.j_per_mpkt);
    recorder.record("j_per_mpkt_1518B", dma, large.j_per_mpkt);
    perf.add_windows(2);
  }

  bench::print_table({"DMA(MiB)", "Gbps 64B", "Gbps 1518B",
                      "J/Mpkt 64B", "J/Mpkt 1518B"},
                     rows);
  std::printf(
      "\nshape check: both curves rise steadily to a plateau; J/Mpkt falls\n"
      "with buffer size; the 1518B flow reaches a much higher Gbps"
      " plateau.\n");
  bench::dump_csv(recorder, "fig4_dma_buffer");
  return 0;
}
