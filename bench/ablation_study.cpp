/// Ablation studies over GreenNFV's design choices (the knobs DESIGN.md
/// calls out):
///
///   A. prioritized vs uniform experience replay (Ape-X's core claim)
///   B. gated (paper) vs shaped SLA rewards
///   C. pure polling vs hybrid callback+polling NF scheduling
///   D. SDN flow steering on/off under skewed traffic (§6 future work)
///
/// A and B are knob-subset sweeps and execute through the campaign runner
/// (one axis each, jobs=N parallelizes the grid, artifacts under
/// out/ablation-*/); C and D toggle engine internals no scenario key
/// reaches, so they keep their bespoke loops. Every section builds from
/// the same resolved ScenarioSpec (paper-default unless scenario=
/// overrides). Overrides: any scenario key (episodes=N seed=K...), jobs=N.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "campaign/runner.hpp"
#include "core/heuristic.hpp"
#include "core/sdn_controller.hpp"
#include "scenario/experiment.hpp"

using namespace greennfv;
using namespace greennfv::core;

namespace {

/// Runs a one-axis campaign over the resolved scenario and returns the
/// summary cells in matrix order.
campaign::CampaignSummary sweep(const scenario::ScenarioSpec& spec,
                                const std::string& campaign_name,
                                const std::string& axis_key,
                                const std::vector<std::string>& values,
                                const std::string& models, int jobs) {
  campaign::CampaignSpec camp;
  camp.name = campaign_name;
  camp.base = spec;
  camp.models = models;
  camp.axes = {{axis_key, values}};
  const campaign::ArtifactStore store(out_root(), camp.name);
  campaign::CampaignRunner runner(
      camp, bench::out_writable() ? &store : nullptr);
  return runner.run(jobs, /*resume=*/false).summary;
}

void ablate_replay(const scenario::ScenarioSpec& spec, int jobs,
                   bench::Perf& perf) {
  std::printf("\n[A] prioritized vs uniform replay (EnergyEfficiency"
              " SLA)\n");
  scenario::ScenarioSpec ee_spec = spec;
  ee_spec.sla_kind = SlaKind::kEnergyEfficiency;
  const campaign::CampaignSummary summary =
      sweep(ee_spec, "ablation-replay", "prioritized", {"1", "0"},
            "greennfv-ee", jobs);
  std::vector<std::vector<std::string>> rows;
  for (const auto& cell : summary.cells) {
    rows.push_back({cell.assignments[0].second == "1" ? "prioritized"
                                                      : "uniform",
                    format_double(cell.gbps.mean, 2),
                    format_double(cell.energy_j.mean, 0),
                    format_double(cell.efficiency.mean, 2)});
    perf.add_windows(spec.eval_windows);
  }
  bench::print_table({"replay", "Gbps", "Energy(J)", "eff"}, rows);
}

void ablate_reward_shape(const scenario::ScenarioSpec& spec, int jobs,
                         bench::Perf& perf) {
  std::printf("\n[B] gated (paper) vs shaped rewards (MaxThroughput"
              " SLA)\n");
  scenario::ScenarioSpec maxt_spec = spec;
  maxt_spec.sla_kind = SlaKind::kMaxThroughput;
  const campaign::CampaignSummary summary =
      sweep(maxt_spec, "ablation-reward", "shaped_reward", {"0", "1"},
            "greennfv-maxt", jobs);
  std::vector<std::vector<std::string>> rows;
  for (const auto& cell : summary.cells) {
    rows.push_back({cell.assignments[0].second == "1" ? "shaped"
                                                      : "gated (paper)",
                    format_double(cell.gbps.mean, 2),
                    format_double(cell.energy_j.mean, 0),
                    format_double(cell.sla.mean * 100.0, 0) + "%"});
    perf.add_windows(spec.eval_windows);
  }
  bench::print_table({"reward", "Gbps", "Energy(J)", "SLA met"}, rows);
}

void ablate_sched_mode(const scenario::ScenarioSpec& spec,
                       bench::Perf& perf) {
  std::printf("\n[C] pure polling vs hybrid callback+polling\n");
  // Identical knobs and traffic; only the scheduling discipline differs.
  const EnvConfig env_config = spec.env_config();
  std::vector<std::vector<std::string>> rows;
  for (const nfvsim::SchedMode mode :
       {nfvsim::SchedMode::kPoll, nfvsim::SchedMode::kHybrid}) {
    NfvEnvironment env(env_config, spec.seed);
    env.controller().set_sched_mode(mode);
    env.controller().set_use_cat(true);
    std::vector<nfvsim::ChainKnobs> knobs(
        static_cast<std::size_t>(env_config.num_chains));
    for (auto& k : knobs) {
      k.cores = 2.0;
      k.freq_ghz = 1.8;
      k.llc_fraction = 0.33;
      k.dma_bytes = 16ull << 20;
      k.batch = 128;
    }
    double gbps = 0.0;
    double energy = 0.0;
    for (int w = 0; w < 6; ++w) {
      const auto outcome = env.run_window(knobs);
      gbps += outcome.throughput_gbps / 6.0;
      energy += outcome.energy_j / 6.0;
    }
    perf.add_windows(6);
    rows.push_back({nfvsim::to_string(mode), format_double(gbps, 2),
                    format_double(energy, 0)});
  }
  bench::print_table({"mode", "Gbps", "Energy(J)"}, rows);
  std::printf("polling buys nothing at these loads but burns the idle"
              " duty — the paper's\nhybrid callback design in one table.\n");
}

void ablate_sdn(const scenario::ScenarioSpec& spec, bench::Perf& perf) {
  std::printf("\n[D] SDN flow steering under skewed load (§6 extension)\n");
  const EnvConfig env_config = spec.env_config();
  std::vector<std::vector<std::string>> rows;
  for (const bool steering : {false, true}) {
    NfvEnvironment env(env_config, spec.seed);
    HeuristicScheduler heuristic{env_config.spec, HeuristicConfig{}};
    NfController controller(env, heuristic);
    SdnController sdn;
    double gbps = 0.0;
    std::vector<ChainObservation> obs(
        static_cast<std::size_t>(env_config.num_chains));
    // Impose the skew: pile every flow onto chain 0.
    traffic::TrafficGenerator& gen = env.generator();
    for (std::size_t f = 0; f < gen.flows().size(); ++f)
      gen.steer_flow(f, 0);
    const int windows = 12;
    for (int w = 0; w < windows; ++w) {
      const auto knobs = heuristic.decide(obs, env.last_knobs());
      const auto outcome = env.run_window(knobs);
      obs = outcome.observations;
      if (steering) (void)sdn.rebalance(obs, gen);
      gbps += outcome.throughput_gbps / windows;
    }
    perf.add_windows(windows);
    rows.push_back({steering ? "SDN steering on" : "steering off",
                    format_double(gbps, 2),
                    steering ? format("%d moves", sdn.rebalances_performed())
                             : "-"});
  }
  bench::print_table({"config", "Gbps", "rebalances"}, rows);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  if (bench::handle_cli(cli,
                        bench::keys_plus(
                            scenario::ScenarioSpec::known_keys(), {"jobs"}),
                        scenario::ScenarioSpec::known_prefixes()))
    return 0;
  Config config = cli;
  if (!config.has("episodes")) config.set("episodes", "300");
  const scenario::ScenarioSpec spec = scenario::resolve(config);
  const int jobs = static_cast<int>(config.get_int("jobs", 1));
  bench::banner("Ablations", "design-choice studies", cli, spec.name);
  bench::Perf perf("ablation_study");
  ablate_replay(spec, jobs, perf);
  ablate_reward_shape(spec, jobs, perf);
  ablate_sched_mode(spec, perf);
  ablate_sdn(spec, perf);
  return 0;
}
