/// Ablation studies over GreenNFV's design choices (the knobs DESIGN.md
/// calls out):
///
///   A. prioritized vs uniform experience replay (Ape-X's core claim)
///   B. gated (paper) vs shaped SLA rewards
///   C. pure polling vs hybrid callback+polling NF scheduling
///   D. SDN flow steering on/off under skewed traffic (§6 future work)
///
/// Every section builds its environment from the same resolved
/// ScenarioSpec (paper-default unless scenario= overrides). Each prints
/// its own mini-table. Overrides: any scenario key (episodes=N seed=K...).

#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/heuristic.hpp"
#include "core/sdn_controller.hpp"
#include "scenario/experiment.hpp"

using namespace greennfv;
using namespace greennfv::core;

namespace {

void ablate_replay(const scenario::ScenarioSpec& spec) {
  std::printf("\n[A] prioritized vs uniform replay (EnergyEfficiency SLA)\n");
  std::vector<std::vector<std::string>> rows;
  for (const bool prioritized : {true, false}) {
    TrainerConfig trainer_config =
        spec.trainer_config(spec.sla(SlaKind::kEnergyEfficiency));
    trainer_config.prioritized_replay = prioritized;
    GreenNfvTrainer trainer(trainer_config);
    const TrainResult result = trainer.train();
    rows.push_back({prioritized ? "prioritized" : "uniform",
                    format_double(result.tail_reward, 3),
                    format_double(result.tail_gbps, 2),
                    format_double(result.tail_efficiency, 2)});
  }
  bench::print_table({"replay", "tail reward", "tail Gbps", "tail eff"},
                     rows);
}

void ablate_reward_shape(const scenario::ScenarioSpec& spec) {
  std::printf("\n[B] gated (paper) vs shaped rewards (MaxThroughput SLA)\n");
  std::vector<std::vector<std::string>> rows;
  for (const bool shaped : {false, true}) {
    TrainerConfig trainer_config =
        spec.trainer_config(spec.sla(SlaKind::kMaxThroughput));
    trainer_config.env.shaped_reward = shaped;
    GreenNfvTrainer trainer(trainer_config);
    (void)trainer.train();
    auto scheduler = trainer.make_scheduler("x");
    const EvalResult eval = evaluate_scheduler(
        trainer_config.env, *scheduler, 8, spec.seed + 31);
    rows.push_back({shaped ? "shaped" : "gated (paper)",
                    format_double(eval.mean_gbps, 2),
                    format_double(eval.mean_energy_j, 0),
                    format_double(eval.sla_satisfaction * 100.0, 0) + "%"});
  }
  bench::print_table({"reward", "Gbps", "Energy(J)", "SLA met"}, rows);
}

void ablate_sched_mode(const scenario::ScenarioSpec& spec) {
  std::printf("\n[C] pure polling vs hybrid callback+polling\n");
  // Identical knobs and traffic; only the scheduling discipline differs.
  const EnvConfig env_config = spec.env_config();
  std::vector<std::vector<std::string>> rows;
  for (const nfvsim::SchedMode mode :
       {nfvsim::SchedMode::kPoll, nfvsim::SchedMode::kHybrid}) {
    NfvEnvironment env(env_config, spec.seed);
    env.controller().set_sched_mode(mode);
    env.controller().set_use_cat(true);
    std::vector<nfvsim::ChainKnobs> knobs(
        static_cast<std::size_t>(env_config.num_chains));
    for (auto& k : knobs) {
      k.cores = 2.0;
      k.freq_ghz = 1.8;
      k.llc_fraction = 0.33;
      k.dma_bytes = 16ull << 20;
      k.batch = 128;
    }
    double gbps = 0.0;
    double energy = 0.0;
    for (int w = 0; w < 6; ++w) {
      const auto outcome = env.run_window(knobs);
      gbps += outcome.throughput_gbps / 6.0;
      energy += outcome.energy_j / 6.0;
    }
    rows.push_back({nfvsim::to_string(mode), format_double(gbps, 2),
                    format_double(energy, 0)});
  }
  bench::print_table({"mode", "Gbps", "Energy(J)"}, rows);
  std::printf("polling buys nothing at these loads but burns the idle"
              " duty — the paper's\nhybrid callback design in one table.\n");
}

void ablate_sdn(const scenario::ScenarioSpec& spec) {
  std::printf("\n[D] SDN flow steering under skewed load (§6 extension)\n");
  const EnvConfig env_config = spec.env_config();
  std::vector<std::vector<std::string>> rows;
  for (const bool steering : {false, true}) {
    NfvEnvironment env(env_config, spec.seed);
    HeuristicScheduler heuristic{env_config.spec, HeuristicConfig{}};
    NfController controller(env, heuristic);
    SdnController sdn;
    double gbps = 0.0;
    std::vector<ChainObservation> obs(
        static_cast<std::size_t>(env_config.num_chains));
    // Impose the skew: pile every flow onto chain 0.
    traffic::TrafficGenerator& gen = env.generator();
    for (std::size_t f = 0; f < gen.flows().size(); ++f)
      gen.steer_flow(f, 0);
    const int windows = 12;
    for (int w = 0; w < windows; ++w) {
      const auto knobs = heuristic.decide(obs, env.last_knobs());
      const auto outcome = env.run_window(knobs);
      obs = outcome.observations;
      if (steering) (void)sdn.rebalance(obs, gen);
      gbps += outcome.throughput_gbps / windows;
    }
    rows.push_back({steering ? "SDN steering on" : "steering off",
                    format_double(gbps, 2),
                    steering ? format("%d moves", sdn.rebalances_performed())
                             : "-"});
  }
  bench::print_table({"config", "Gbps", "rebalances"}, rows);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cli = Config::from_args(argc, argv);
  if (bench::handle_cli(cli, scenario::ScenarioSpec::known_keys(),
                        scenario::ScenarioSpec::known_prefixes()))
    return 0;
  Config config = cli;
  if (!config.has("episodes")) config.set("episodes", "300");
  const scenario::ScenarioSpec spec = scenario::resolve(config);
  bench::banner("Ablations", "design-choice studies", cli, spec.name);
  ablate_replay(spec);
  ablate_reward_shape(spec);
  ablate_sched_mode(spec);
  ablate_sdn(spec);
  return 0;
}
