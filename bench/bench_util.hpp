#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/string_util.hpp"
#include "telemetry/recorder.hpp"

/// \file bench_util.hpp
/// Shared plumbing for the figure-reproduction binaries: banner printing,
/// table emission, and CSV dumps under bench_out/.

namespace greennfv::bench {

/// Prints the figure banner (id, description, parameter echo).
inline void banner(const std::string& figure, const std::string& title,
                   const Config& config) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  if (!config.entries().empty()) {
    std::printf("overrides:");
    for (const auto& [key, value] : config.entries())
      std::printf(" %s=%s", key.c_str(), value.c_str());
    std::printf("\n");
  }
  std::printf("=============================================================\n");
}

/// Emits a table to stdout.
inline void print_table(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::fputs(render_table(header, rows).c_str(), stdout);
}

/// Dumps a recorder to bench_out/<name>.csv (best effort: prints a warning
/// instead of failing the bench when the directory is not writable).
inline void dump_csv(const telemetry::Recorder& recorder,
                     const std::string& name) {
  if (recorder.num_series() == 0) return;
  const std::string path = "bench_out_" + name + ".csv";
  try {
    recorder.to_csv(path);
    std::printf("[csv] wrote %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::printf("[csv] skipped (%s)\n", e.what());
  }
}

/// Downsamples a series to `points` rows of (x, value) cells.
inline std::vector<std::vector<std::string>> series_rows(
    const TimeSeries& series, std::size_t points, int decimals = 3) {
  const TimeSeries d = series.downsample(points);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    rows.push_back({format_double(d.times()[i], 0),
                    format_double(d.values()[i], decimals)});
  }
  return rows;
}

}  // namespace greennfv::bench
