#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/fs_util.hpp"
#include "common/log.hpp"
#include "common/json.hpp"
#include "common/string_util.hpp"
#include "scenario/presets.hpp"
#include "telemetry/recorder.hpp"

/// \file bench_util.hpp
/// Shared plumbing for the figure-reproduction binaries: banner printing
/// (with the resolved scenario name), `help=1` key listings, table
/// emission, CSV dumps (routed under out/), and per-figure wall-clock
/// accounting (out/BENCH_<fig>.json) so the perf trajectory accumulates
/// PR over PR.

namespace greennfv::bench {

/// Prints the figure banner (id, description, resolved scenario,
/// parameter echo).
inline void banner(const std::string& figure, const std::string& title,
                   const Config& config,
                   const std::string& scenario_name = "") {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  if (!scenario_name.empty())
    std::printf("scenario: %s\n", scenario_name.c_str());
  if (!config.entries().empty()) {
    std::printf("overrides:");
    for (const auto& [key, value] : config.entries())
      std::printf(" %s=%s", key.c_str(), value.c_str());
    std::printf("\n");
  }
  std::printf("=============================================================\n");
}

/// Appends binary-specific keys to a base vocabulary (typically
/// ScenarioSpec::known_keys() plus "help").
inline std::vector<std::string> keys_plus(
    std::vector<std::string> base,
    std::initializer_list<const char*> extra) {
  for (const char* key : extra) base.emplace_back(key);
  return base;
}

/// When `help=1` was passed: lists every key the binary understands (and
/// the scenario presets when the binary is scenario-driven) and returns
/// true so main can exit.
inline bool help_requested(const Config& config,
                           std::vector<std::string> keys) {
  if (!config.get_bool("help", false)) return false;
  const bool scenario_driven =
      std::find(keys.begin(), keys.end(), "scenario") != keys.end();
  scenario::print_cli_help(std::move(keys), scenario_driven);
  return true;
}

/// help_requested + Config::check_known in one call: returns true when
/// main should exit (help printed); exits with status 2 on mistyped keys.
inline bool handle_cli(const Config& config,
                       const std::vector<std::string>& keys,
                       const std::vector<std::string>& prefixes = {}) {
  if (help_requested(config, keys)) return true;
  std::vector<std::string> known = keys;
  known.emplace_back("help");
  try {
    config.check_known(known, prefixes);
  } catch (const std::exception& e) {
    GNFV_LOG_ERROR("bench") << e.what();
    std::exit(2);
  }
  return false;
}

/// Emits a table to stdout.
inline void print_table(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::fputs(render_table(header, rows).c_str(), stdout);
}

/// Dumps a recorder to out/bench_<name>.csv (best effort: prints a warning
/// instead of failing the bench when the directory is not writable).
inline void dump_csv(const telemetry::Recorder& recorder,
                     const std::string& name) {
  if (recorder.num_series() == 0) return;
  try {
    const std::string path = out_path("bench_" + name + ".csv");
    recorder.to_csv(path);
    std::printf("[csv] wrote %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::printf("[csv] skipped (%s)\n", e.what());
  }
}

/// Probes whether out/ artifacts can be written. Figure benches are
/// best-effort about their outputs (an unwritable directory must cost a
/// warning, not the evaluation): when this returns false they run their
/// campaigns without an artifact store.
inline bool out_writable() {
  try {
    const std::string probe = out_path(".writable_probe");
    write_file_atomic(probe, "");
    std::remove(probe.c_str());
    return true;
  } catch (const std::exception& e) {
    std::printf("[artifacts] disabled (%s)\n", e.what());
    return false;
  }
}

/// Best-effort current commit id (12 hex chars) for stamping bench
/// history records: reads .git/HEAD from the working directory or one
/// level up (build-dir invocations) and follows one "ref: " indirection.
/// Empty when not run inside a git checkout — history records still
/// append, they just lose the provenance column.
inline std::string git_head_sha() {
  const auto chomp = [](std::string text) {
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
      text.pop_back();
    return text;
  };
  for (const char* git_dir : {".git", "../.git"}) {
    try {
      std::string head =
          chomp(read_file(std::string(git_dir) + "/HEAD"));
      if (head.rfind("ref: ", 0) == 0)
        head = chomp(read_file(std::string(git_dir) + "/" + head.substr(5)));
      if (head.size() >= 12) return head.substr(0, 12);
    } catch (const std::exception&) {
      // Not a checkout at this level (or a packed ref) — try the next.
    }
  }
  return "";
}

/// Current UTC time as ISO-8601 ("2026-08-08T12:34:56Z").
inline std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

/// Per-figure perf accounting: construct one per bench main with the
/// figure's file stem, add the simulated control windows the bench
/// evaluated, and the destructor writes out/BENCH_<fig>.json with the
/// wall-clock and windows/sec — one data point per run of the figure, the
/// series future PRs' optimizations are measured against. Every run also
/// appends one git-sha + timestamp stamped record to
/// out/bench_history.jsonl and prints warn-only rate deltas against the
/// previous record for the same figure, so the perf trajectory
/// accumulates across PRs without gating any of them.
class Perf {
 public:
  explicit Perf(std::string figure)
      : figure_(std::move(figure)),
        start_(std::chrono::steady_clock::now()) {}

  Perf(const Perf&) = delete;
  Perf& operator=(const Perf&) = delete;

  void add_windows(double n) { windows_ += n; }

  /// Extra figure-specific metrics (e.g. bench_train's train_steps/sec);
  /// emitted into the BENCH json after the wall-clock fields, in insertion
  /// order.
  void add_metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  ~Perf() {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    try {
      Json json = Json::object();
      json.set("figure", figure_);
      json.set("wall_s", wall_s);
      json.set("windows", windows_);
      json.set("windows_per_sec", wall_s > 0.0 ? windows_ / wall_s : 0.0);
      for (const auto& [key, value] : metrics_) json.set(key, value);
      const std::string path = out_path("BENCH_" + figure_ + ".json");
      write_file_atomic(path, json.dump(1) + "\n");
      std::printf("[perf] %s: %.2f s wall, %.0f windows (%.1f windows/s)"
                  " -> %s\n",
                  figure_.c_str(), wall_s, windows_,
                  wall_s > 0.0 ? windows_ / wall_s : 0.0, path.c_str());
      append_history(json);
    } catch (const std::exception& e) {
      std::printf("[perf] skipped (%s)\n", e.what());
    }
  }

 private:
  /// Appends the stamped record to out/bench_history.jsonl and prints
  /// the deltas of every rate metric (windows_per_sec plus any
  /// *_per_sec figure metric) against the previous record for this
  /// figure. Warn-only by design: machine noise must never fail a bench,
  /// the history just makes drift visible PR over PR.
  void append_history(const Json& perf_json) {
    const std::string path = out_path("bench_history.jsonl");

    // Previous record for this figure: last matching line wins. Corrupt
    // lines (interrupted writes) are skipped, not fatal.
    Json previous;
    if (file_exists(path)) {
      for (const std::string& line : split(read_file(path), '\n')) {
        if (line.empty()) continue;
        try {
          Json parsed = Json::parse(line);
          if (parsed.has("figure") &&
              parsed.at("figure").as_string() == figure_) {
            previous = std::move(parsed);
          }
        } catch (const std::exception&) {
          continue;
        }
      }
    }

    Json record = Json::object();
    record.set("figure", figure_);
    record.set("git_sha", git_head_sha());
    record.set("timestamp", utc_timestamp());
    for (const auto& [key, value] : perf_json.members()) {
      if (key != "figure") record.set(key, value);
    }
    // Plain append, not write_file_atomic: history accumulates and a
    // torn tail line only costs that one record on replay.
    std::FILE* file = std::fopen(path.c_str(), "ab");
    if (file == nullptr) {
      std::printf("[history] skipped (cannot append %s)\n", path.c_str());
      return;
    }
    const std::string line = record.dump(0) + "\n";
    std::fwrite(line.data(), 1, line.size(), file);
    std::fclose(file);
    std::printf("[history] appended %s record %s to %s\n", figure_.c_str(),
                record.at("timestamp").as_string().c_str(), path.c_str());

    if (previous.is_null()) return;
    for (const auto& [key, value] : record.members()) {
      if (!value.is_number()) continue;
      const bool rate =
          key == "windows_per_sec" ||
          (key.size() > 8 &&
           key.compare(key.size() - 8, 8, "_per_sec") == 0);
      if (!rate || !previous.has(key) || !previous.at(key).is_number())
        continue;
      const double before = previous.at(key).as_double();
      const double after = value.as_double();
      if (before <= 0.0) continue;
      const double delta_pct = 100.0 * (after - before) / before;
      std::printf("[history] %s: %.1f -> %.1f (%+.1f%%) vs %s@%s%s\n",
                  key.c_str(), before, after, delta_pct,
                  previous.has("git_sha")
                      ? previous.at("git_sha").as_string().c_str()
                      : "?",
                  previous.has("timestamp")
                      ? previous.at("timestamp").as_string().c_str()
                      : "?",
                  delta_pct < -20.0 ? "  WARNING: >20% slower (warn-only)"
                                    : "");
    }
  }

  std::string figure_;
  std::chrono::steady_clock::time_point start_;
  double windows_ = 0.0;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Downsamples a series to `points` rows of (x, value) cells.
inline std::vector<std::vector<std::string>> series_rows(
    const TimeSeries& series, std::size_t points, int decimals = 3) {
  const TimeSeries d = series.downsample(points);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    rows.push_back({format_double(d.times()[i], 0),
                    format_double(d.values()[i], decimals)});
  }
  return rows;
}

}  // namespace greennfv::bench
