#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/fs_util.hpp"
#include "common/log.hpp"
#include "common/json.hpp"
#include "common/string_util.hpp"
#include "scenario/presets.hpp"
#include "telemetry/recorder.hpp"

/// \file bench_util.hpp
/// Shared plumbing for the figure-reproduction binaries: banner printing
/// (with the resolved scenario name), `help=1` key listings, table
/// emission, CSV dumps (routed under out/), and per-figure wall-clock
/// accounting (out/BENCH_<fig>.json) so the perf trajectory accumulates
/// PR over PR.

namespace greennfv::bench {

/// Prints the figure banner (id, description, resolved scenario,
/// parameter echo).
inline void banner(const std::string& figure, const std::string& title,
                   const Config& config,
                   const std::string& scenario_name = "") {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  if (!scenario_name.empty())
    std::printf("scenario: %s\n", scenario_name.c_str());
  if (!config.entries().empty()) {
    std::printf("overrides:");
    for (const auto& [key, value] : config.entries())
      std::printf(" %s=%s", key.c_str(), value.c_str());
    std::printf("\n");
  }
  std::printf("=============================================================\n");
}

/// Appends binary-specific keys to a base vocabulary (typically
/// ScenarioSpec::known_keys() plus "help").
inline std::vector<std::string> keys_plus(
    std::vector<std::string> base,
    std::initializer_list<const char*> extra) {
  for (const char* key : extra) base.emplace_back(key);
  return base;
}

/// When `help=1` was passed: lists every key the binary understands (and
/// the scenario presets when the binary is scenario-driven) and returns
/// true so main can exit.
inline bool help_requested(const Config& config,
                           std::vector<std::string> keys) {
  if (!config.get_bool("help", false)) return false;
  const bool scenario_driven =
      std::find(keys.begin(), keys.end(), "scenario") != keys.end();
  scenario::print_cli_help(std::move(keys), scenario_driven);
  return true;
}

/// help_requested + Config::check_known in one call: returns true when
/// main should exit (help printed); exits with status 2 on mistyped keys.
inline bool handle_cli(const Config& config,
                       const std::vector<std::string>& keys,
                       const std::vector<std::string>& prefixes = {}) {
  if (help_requested(config, keys)) return true;
  std::vector<std::string> known = keys;
  known.emplace_back("help");
  try {
    config.check_known(known, prefixes);
  } catch (const std::exception& e) {
    GNFV_LOG_ERROR("bench") << e.what();
    std::exit(2);
  }
  return false;
}

/// Emits a table to stdout.
inline void print_table(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::fputs(render_table(header, rows).c_str(), stdout);
}

/// Dumps a recorder to out/bench_<name>.csv (best effort: prints a warning
/// instead of failing the bench when the directory is not writable).
inline void dump_csv(const telemetry::Recorder& recorder,
                     const std::string& name) {
  if (recorder.num_series() == 0) return;
  try {
    const std::string path = out_path("bench_" + name + ".csv");
    recorder.to_csv(path);
    std::printf("[csv] wrote %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::printf("[csv] skipped (%s)\n", e.what());
  }
}

/// Probes whether out/ artifacts can be written. Figure benches are
/// best-effort about their outputs (an unwritable directory must cost a
/// warning, not the evaluation): when this returns false they run their
/// campaigns without an artifact store.
inline bool out_writable() {
  try {
    const std::string probe = out_path(".writable_probe");
    write_file_atomic(probe, "");
    std::remove(probe.c_str());
    return true;
  } catch (const std::exception& e) {
    std::printf("[artifacts] disabled (%s)\n", e.what());
    return false;
  }
}

/// Per-figure perf accounting: construct one per bench main with the
/// figure's file stem, add the simulated control windows the bench
/// evaluated, and the destructor writes out/BENCH_<fig>.json with the
/// wall-clock and windows/sec — one data point per run of the figure, the
/// series future PRs' optimizations are measured against.
class Perf {
 public:
  explicit Perf(std::string figure)
      : figure_(std::move(figure)),
        start_(std::chrono::steady_clock::now()) {}

  Perf(const Perf&) = delete;
  Perf& operator=(const Perf&) = delete;

  void add_windows(double n) { windows_ += n; }

  /// Extra figure-specific metrics (e.g. bench_train's train_steps/sec);
  /// emitted into the BENCH json after the wall-clock fields, in insertion
  /// order.
  void add_metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  ~Perf() {
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    try {
      Json json = Json::object();
      json.set("figure", figure_);
      json.set("wall_s", wall_s);
      json.set("windows", windows_);
      json.set("windows_per_sec", wall_s > 0.0 ? windows_ / wall_s : 0.0);
      for (const auto& [key, value] : metrics_) json.set(key, value);
      const std::string path = out_path("BENCH_" + figure_ + ".json");
      write_file_atomic(path, json.dump(1) + "\n");
      std::printf("[perf] %s: %.2f s wall, %.0f windows (%.1f windows/s)"
                  " -> %s\n",
                  figure_.c_str(), wall_s, windows_,
                  wall_s > 0.0 ? windows_ / wall_s : 0.0, path.c_str());
    } catch (const std::exception& e) {
      std::printf("[perf] skipped (%s)\n", e.what());
    }
  }

 private:
  std::string figure_;
  std::chrono::steady_clock::time_point start_;
  double windows_ = 0.0;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Downsamples a series to `points` rows of (x, value) cells.
inline std::vector<std::vector<std::string>> series_rows(
    const TimeSeries& series, std::size_t points, int decimals = 3) {
  const TimeSeries d = series.downsample(points);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    rows.push_back({format_double(d.times()[i], 0),
                    format_double(d.values()[i], decimals)});
  }
  return rows;
}

}  // namespace greennfv::bench
