#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/string_util.hpp"
#include "scenario/presets.hpp"
#include "telemetry/recorder.hpp"

/// \file bench_util.hpp
/// Shared plumbing for the figure-reproduction binaries: banner printing
/// (with the resolved scenario name), `help=1` key listings, table
/// emission, and CSV dumps.

namespace greennfv::bench {

/// Prints the figure banner (id, description, resolved scenario,
/// parameter echo).
inline void banner(const std::string& figure, const std::string& title,
                   const Config& config,
                   const std::string& scenario_name = "") {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), title.c_str());
  if (!scenario_name.empty())
    std::printf("scenario: %s\n", scenario_name.c_str());
  if (!config.entries().empty()) {
    std::printf("overrides:");
    for (const auto& [key, value] : config.entries())
      std::printf(" %s=%s", key.c_str(), value.c_str());
    std::printf("\n");
  }
  std::printf("=============================================================\n");
}

/// Appends binary-specific keys to a base vocabulary (typically
/// ScenarioSpec::known_keys() plus "help").
inline std::vector<std::string> keys_plus(
    std::vector<std::string> base,
    std::initializer_list<const char*> extra) {
  for (const char* key : extra) base.emplace_back(key);
  return base;
}

/// When `help=1` was passed: lists every key the binary understands (and
/// the scenario presets when the binary is scenario-driven) and returns
/// true so main can exit.
inline bool help_requested(const Config& config,
                           std::vector<std::string> keys) {
  if (!config.get_bool("help", false)) return false;
  const bool scenario_driven =
      std::find(keys.begin(), keys.end(), "scenario") != keys.end();
  scenario::print_cli_help(std::move(keys), scenario_driven);
  return true;
}

/// help_requested + Config::check_known in one call: returns true when
/// main should exit (help printed); exits with status 2 on mistyped keys.
inline bool handle_cli(const Config& config,
                       const std::vector<std::string>& keys,
                       const std::vector<std::string>& prefixes = {}) {
  if (help_requested(config, keys)) return true;
  std::vector<std::string> known = keys;
  known.emplace_back("help");
  try {
    config.check_known(known, prefixes);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
  return false;
}

/// Emits a table to stdout.
inline void print_table(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
  std::fputs(render_table(header, rows).c_str(), stdout);
}

/// Dumps a recorder to bench_out_<name>.csv (best effort: prints a warning
/// instead of failing the bench when the directory is not writable).
inline void dump_csv(const telemetry::Recorder& recorder,
                     const std::string& name) {
  if (recorder.num_series() == 0) return;
  const std::string path = "bench_out_" + name + ".csv";
  try {
    recorder.to_csv(path);
    std::printf("[csv] wrote %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::printf("[csv] skipped (%s)\n", e.what());
  }
}

/// Downsamples a series to `points` rows of (x, value) cells.
inline std::vector<std::vector<std::string>> series_rows(
    const TimeSeries& series, std::size_t points, int decimals = 3) {
  const TimeSeries d = series.downsample(points);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    rows.push_back({format_double(d.times()[i], 0),
                    format_double(d.values()[i], decimals)});
  }
  return rows;
}

}  // namespace greennfv::bench
