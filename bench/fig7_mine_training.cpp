/// Reproduces Figure 7: "Training progress of the proposed reinforcement
/// learning algorithm during the testing of the Minimum Energy SLA."
///
/// The agent minimizes energy subject to T >= 7.5 Gbps ("we set the
/// minimum throughput constraint to 7.5 Gbps, and if the model violates
/// that constraint, it gets no rewards"). Same panels as Fig. 6.
///
/// Expected shape (paper): the model first finds high-throughput settings
/// (high CPU/frequency), then walks energy down while holding the floor —
/// keeping LLC stable and growing batch/buffer to compensate for the CPU
/// it gives back.

#include "bench/train_util.hpp"

using namespace greennfv;

int main(int argc, char** argv) {
  const Config config = Config::from_args(argc, argv);
  if (bench::handle_cli(
          config,
          bench::keys_plus(scenario::ScenarioSpec::known_keys(),
                           {"table_rows", "replay"}),
          scenario::ScenarioSpec::known_prefixes()))
    return 0;
  (void)bench::run_training_figure(
      "Figure 7", "Minimum Energy SLA training progress",
      core::SlaKind::kMinEnergy, config,
      /*show_efficiency=*/false, "fig7_mine_training");
  return 0;
}
